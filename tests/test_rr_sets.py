"""Tests for RR-set sampling and the maximum-coverage machinery."""

import numpy as np
import pytest

from repro.analysis import exact_influence
from repro.diffusion import CoverageInstance, RRSampler
from repro.errors import AlgorithmError
from repro.graph import InfluenceGraph

from .conftest import build_graph, random_graph


class TestRRSampler:
    def test_rr_set_always_contains_root(self):
        g = random_graph(15, 40, seed=0)
        sampler = RRSampler(g, rng=0)
        for _ in range(20):
            root = sampler.sample_root()
            rr = sampler.sample(root=root)
            assert root in rr

    def test_deterministic_graph_rr_is_reverse_reachability(self):
        g = build_graph(4, [(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        sampler = RRSampler(g, rng=0)
        rr = sampler.sample(root=3)
        assert sorted(rr.tolist()) == [0, 1, 2, 3]

    def test_zero_probability_edges_never_cross(self):
        g = build_graph(3, [(0, 1, 0.0001), (1, 2, 0.0001)])
        sampler = RRSampler(g, rng=0)
        sizes = [sampler.sample(root=2).size for _ in range(50)]
        assert max(sizes) <= 2  # overwhelmingly just the root

    def test_weighted_root_sampling(self):
        g = InfluenceGraph.from_edges(
            3, np.array([0]), np.array([1]), np.array([0.5]),
            weights=np.array([1, 1, 98]),
        )
        sampler = RRSampler(g, rng=0)
        roots = [sampler.sample_root() for _ in range(2000)]
        assert np.mean(np.asarray(roots) == 2) == pytest.approx(0.98, abs=0.02)

    def test_examined_edges_counter_grows(self):
        g = random_graph(20, 60, seed=1)
        sampler = RRSampler(g, rng=0)
        sampler.sample_batch(10)
        assert sampler.examined_edges > 0

    def test_empty_graph_root_raises(self):
        g = InfluenceGraph.empty(0)
        with pytest.raises(AlgorithmError):
            RRSampler(g, rng=0).sample_root()

    def test_influence_estimate_unbiased(self):
        """W * E[coverage of {v}] should equal Inf({v}) (Borgs et al.)."""
        g = build_graph(4, [(0, 1, 0.6), (1, 2, 0.5), (0, 3, 0.3)])
        exact = exact_influence(g, np.array([0]))
        sampler = RRSampler(g, rng=3)
        hits = sum(0 in sampler.sample() for _ in range(30_000))
        estimate = g.n * hits / 30_000
        assert estimate == pytest.approx(exact, rel=0.04)


class TestCoverageInstance:
    def _instance(self):
        rr_sets = [
            np.array([0, 1]),
            np.array([1, 2]),
            np.array([2]),
            np.array([0, 1, 2]),
            np.array([3]),
        ]
        return CoverageInstance(rr_sets, n=5)

    def test_degree(self):
        cov = self._instance()
        assert cov.degree().tolist() == [2, 3, 3, 1, 0]

    def test_sets_containing(self):
        cov = self._instance()
        assert sorted(cov.sets_containing(1).tolist()) == [0, 1, 3]

    def test_coverage_of(self):
        cov = self._instance()
        assert cov.coverage_of(np.array([1])) == 3
        assert cov.coverage_of(np.array([1, 3])) == 4
        assert cov.coverage_of(np.array([], dtype=np.int64)) == 0

    def test_greedy_two_picks(self):
        cov = self._instance()
        seeds, covered = cov.greedy(2)
        # k=2 optimum is 4 sets (set 4 is only coverable by vertex 3, and
        # covering sets 0-3 needs two of {0, 1, 2}); greedy attains it.
        assert covered == 4

    def test_greedy_three_picks_cover_everything(self):
        cov = self._instance()
        seeds, covered = cov.greedy(3)
        assert covered == 5
        assert 3 in seeds  # only vertex covering set 4

    def test_greedy_never_repeats(self):
        cov = self._instance()
        seeds, _ = cov.greedy(4)
        assert len(set(seeds.tolist())) == len(seeds)

    def test_greedy_k_validation(self):
        with pytest.raises(AlgorithmError):
            self._instance().greedy(0)

    def test_empty_collection(self):
        cov = CoverageInstance([], n=3)
        assert cov.coverage_of(np.array([0])) == 0
        seeds, covered = cov.greedy(2)
        assert covered == 0

    def test_greedy_matches_naive_on_random_instances(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            rr_sets = [
                np.unique(rng.integers(0, 8, size=rng.integers(1, 5)))
                for _ in range(12)
            ]
            cov = CoverageInstance(rr_sets, n=8)
            seeds, covered = cov.greedy(3)
            # naive greedy reference
            chosen: list[int] = []
            covered_sets: set[int] = set()
            for _ in range(3):
                best_v, best_gain = -1, -1
                for v in range(8):
                    if v in chosen:
                        continue
                    gain = sum(
                        1
                        for i, s in enumerate(rr_sets)
                        if i not in covered_sets and v in s
                    )
                    if gain > best_gain:
                        best_v, best_gain = v, gain
                chosen.append(best_v)
                covered_sets |= {
                    i for i, s in enumerate(rr_sets) if best_v in s
                }
            assert covered == len(covered_sets)
