"""Tests for evaluation metrics, cross-checked against scipy."""

import numpy as np
import pytest

from repro.analysis import (
    average_degree,
    mean_absolute_relative_error,
    rank_array,
    scc_size_distribution,
    spearman_rank_correlation,
)
from repro.errors import AlgorithmError
from repro.partition import Partition


class TestMARE:
    def test_perfect_estimates(self):
        gt = np.array([1.0, 2.0, 4.0])
        assert mean_absolute_relative_error(gt, gt) == 0.0

    def test_known_value(self):
        gt = np.array([10.0, 20.0])
        est = np.array([11.0, 18.0])
        assert mean_absolute_relative_error(gt, est) == pytest.approx(0.1)

    def test_rejects_zero_ground_truth(self):
        with pytest.raises(AlgorithmError):
            mean_absolute_relative_error(np.array([0.0]), np.array([1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(AlgorithmError):
            mean_absolute_relative_error(np.array([1.0]), np.array([1.0, 2.0]))


class TestRanks:
    def test_simple_ranks(self):
        assert rank_array(np.array([30.0, 10.0, 20.0])).tolist() == [3.0, 1.0, 2.0]

    def test_tied_ranks_averaged(self):
        assert rank_array(np.array([1.0, 2.0, 2.0, 3.0])).tolist() == [
            1.0, 2.5, 2.5, 4.0,
        ]

    def test_all_equal(self):
        assert rank_array(np.array([5.0, 5.0, 5.0])).tolist() == [2.0, 2.0, 2.0]

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.integers(0, 8, size=30).astype(float)  # plenty of ties
            assert rank_array(x).tolist() == scipy_stats.rankdata(x).tolist()


class TestSpearman:
    def test_perfect_correlation(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(x, 10 * x) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy_with_ties(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.integers(0, 10, size=40).astype(float)
            y = x + rng.normal(0, 3, size=40)
            expected = scipy_stats.spearmanr(x, y).statistic
            assert spearman_rank_correlation(x, y) == pytest.approx(expected)

    def test_constant_input(self):
        x = np.array([1.0, 1.0, 1.0])
        assert spearman_rank_correlation(x, x) == 1.0

    def test_rejects_short_input(self):
        with pytest.raises(AlgorithmError):
            spearman_rank_correlation(np.array([1.0]), np.array([2.0]))


class TestStructureMetrics:
    def test_scc_size_distribution(self):
        p = Partition(np.array([0, 0, 0, 1, 2, 2]))
        assert scc_size_distribution(p) == {3: 1, 1: 1, 2: 1}

    def test_average_degree(self):
        assert average_degree(10, 45) == pytest.approx(4.5)
        assert average_degree(0, 0) == 0.0
