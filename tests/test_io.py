"""Unit tests for edge-list text I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import read_edge_list, write_edge_list

from .conftest import build_graph


class TestReadEdgeList:
    def test_basic_with_probabilities(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n0 1 0.3\n1 2 0.7\n")
        g = read_edge_list(path)
        assert g.n == 3
        assert g.m == 2
        pairs = {(u, v): p for u, v, p in zip(*g.edge_arrays())}
        assert pairs[(0, 1)] == pytest.approx(0.3)

    def test_default_probability(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, default_prob=0.25)
        assert g.probs[0] == pytest.approx(0.25)

    def test_undirected_flag(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n")
        g = read_edge_list(path, undirected=True)
        assert g.m == 2

    def test_reverse_flag(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n")
        g = read_edge_list(path, reverse=True)
        assert set(zip(*g.edge_arrays()[:2])) == {(1, 0)}

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0 0.5\n0 1 0.5\n")
        assert read_edge_list(path).m == 1

    def test_duplicates_combined(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.3\n0 1 0.2\n")
        g = read_edge_list(path)
        assert g.m == 1
        assert g.probs[0] == pytest.approx(0.44)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5 extra stuff\n")
        with pytest.raises(GraphFormatError, match="expected"):
            read_edge_list(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\n0 1 0.5\n\n")
        assert read_edge_list(path).m == 1


class TestRoundTrip:
    def test_write_then_read_preserves_graph(self, tmp_path):
        g = build_graph(4, [(0, 1, 0.25), (1, 2, 0.5), (3, 0, 0.125)])
        path = tmp_path / "out.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back == g

    def test_write_without_probs(self, tmp_path):
        g = build_graph(3, [(0, 1, 0.25)])
        path = tmp_path / "out.txt"
        write_edge_list(g, path, include_probs=False)
        back = read_edge_list(path, default_prob=0.9)
        assert back.probs[0] == pytest.approx(0.9)
