"""Tests for reprolint's project-scope concurrency pass (RL101–RL104),
the stale-waiver detector (RL007), and the versioned JSON schema.

The per-rule fixture corpus lives in ``tests/lint_fixtures/concurrency/``
— one violating and one clean file per RL1xx rule.  Beyond the fixtures,
this file pins two load-bearing facts about the real serving layer: the
inferred guard map (every lock-guarded attribute named, zero unguarded
mutations) and the static lock-order graph (acyclic, with exactly the
expected cross-class edges).
"""

import json
import pathlib
import textwrap

import pytest

import repro
from repro.lint import (
    PROJECT_RULES,
    build_index,
    build_index_for_paths,
    lint_paths,
    lint_source,
    render_json,
    project_rule_ids,
)
from repro.lint.cli import all_rule_ids, main as lint_main
from repro.lint.engine import parse_source

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"
CONCURRENCY = FIXTURES / "concurrency"
PACKAGE_DIR = pathlib.Path(repro.__file__).resolve().parent
SERVE_DIR = PACKAGE_DIR / "serve"


def project_hits(name: str) -> list[tuple[str, int]]:
    violations = lint_paths(
        [CONCURRENCY / name], rules=[], project_rules=list(PROJECT_RULES)
    )
    return [(v.rule_id, v.line) for v in violations]


def index_sources(**modules: str) -> "object":
    """Build a ProjectIndex from in-memory module sources."""
    contexts = []
    for name, source in modules.items():
        pf = parse_source(textwrap.dedent(source), display=f"{name}.py")
        assert pf.error is None, pf.error
        contexts.append(pf.ctx)
    return build_index(contexts)


# (rule, bad fixture, expected violation lines, clean fixture)
RULE_CASES = [
    ("RL101", "rl101_bad.py", [23, 30], "rl101_ok.py"),
    ("RL102", "rl102_bad.py", [16], "rl102_ok.py"),
    ("RL103", "rl103_bad.py", [19], "rl103_ok.py"),
    ("RL104", "rl104_bad.py", [12, 15, 20], "rl104_ok.py"),
]


class TestProjectRules:
    @pytest.mark.parametrize(
        "rule_id,bad,lines,ok", RULE_CASES, ids=[c[0] for c in RULE_CASES]
    )
    def test_rule_fires_with_id_and_lines(self, rule_id, bad, lines, ok):
        assert project_hits(bad) == [(rule_id, line) for line in lines]

    @pytest.mark.parametrize(
        "rule_id,bad,lines,ok", RULE_CASES, ids=[c[0] for c in RULE_CASES]
    )
    def test_clean_fixture_is_clean(self, rule_id, bad, lines, ok):
        assert project_hits(ok) == []

    def test_catalogue(self):
        assert project_rule_ids() == ["RL101", "RL102", "RL103", "RL104"]
        assert set(project_rule_ids()) < set(all_rule_ids())

    def test_suppression_silences_project_rule(self):
        source = (CONCURRENCY / "rl101_bad.py").read_text(encoding="utf-8")
        waived = source.replace(
            "self._items.append(value)  # RL101",
            "self._items.append(value)  # reprolint: disable=RL101 -",
        )
        pf = parse_source(waived, display="rl101_waived.py")
        index = build_index([pf.ctx])
        raw = [v for rule in PROJECT_RULES for v in rule.check_project(index)]
        kept = [v for v in raw if not pf.suppressions.silences(v)]
        assert [(v.rule_id, v.line) for v in raw] == [
            ("RL101", 23), ("RL101", 30)]
        assert [(v.rule_id, v.line) for v in kept] == [("RL101", 30)]


class TestGuardInference:
    def test_annotation_disagreement_is_a_finding(self):
        index = index_sources(mod="""
            import threading

            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._x = 0  #: guarded-by: _a

                def bump(self):
                    with self._b:
                        self._x += 1
        """)
        rule = next(r for r in PROJECT_RULES if r.rule_id == "RL101")
        assert [v.line for v in rule.check_project(index)] == [12]

    def test_annotation_naming_unknown_lock_is_a_finding(self):
        index = index_sources(mod="""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._x = 0  #: guarded-by: _typo_lock
        """)
        rule = next(r for r in PROJECT_RULES if r.rule_id == "RL101")
        messages = [v.message for v in rule.check_project(index)]
        assert len(messages) == 1
        assert "_typo_lock" in messages[0]

    def test_annotation_binds_one_statement_not_the_next_line(self):
        index = index_sources(mod="""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._x = 0  #: guarded-by: _lock
                    self._y = 0

                def bump(self):
                    self._y += 1
        """)
        cls = index.classes["C"]
        assert cls.annotations == {"_x": "_lock"}

    def test_private_helper_inherits_entry_lockset(self):
        # _evict is only ever called with the lock held, so its bare
        # mutation of _items is guarded — the RL101 false positive the
        # entry-lockset fixed point exists to prevent.
        index = index_sources(mod="""
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v
                        self._evict()

                def _evict(self):
                    self._items.popitem()
        """)
        rule = next(r for r in PROJECT_RULES if r.rule_id == "RL101")
        assert rule.check_project(index) == []

    def test_escaped_helper_gets_no_entry_lockset(self):
        # The same helper handed to a callback loses the guarantee: the
        # analysis must not assume the lock travels with the reference.
        index = index_sources(mod="""
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v
                        self._evict()

                def spawn(self, runner):
                    runner(self._evict)

                def _evict(self):
                    self._items.popitem()
        """)
        rule = next(r for r in PROJECT_RULES if r.rule_id == "RL101")
        assert [v.line for v in rule.check_project(index)] == [18]


class TestCrossModule:
    def test_lock_order_inversion_across_classes(self):
        # service.step acquires Service._lock then (via the worker field)
        # Worker._lock; worker.ping does the reverse through its back
        # reference — a cycle no single file reveals.
        index = index_sources(
            service="""
                import threading
                from worker import Worker

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.worker = Worker(self)

                    def step(self):
                        with self._lock:
                            self.worker.poke()

                    def nudge(self):
                        with self._lock:
                            pass
            """,
            worker="""
                import threading

                class Worker:
                    def __init__(self, service: "Service"):
                        self._lock = threading.Lock()
                        self._service = service

                    def poke(self):
                        with self._lock:
                            pass

                    def ping(self):
                        with self._lock:
                            self._service.nudge()
            """,
        )
        cycles = index.lock_cycles()
        assert len(cycles) == 1
        nodes, witness = cycles[0]
        assert set(nodes) == {"Service._lock", "Worker._lock"}
        assert witness  # every cycle must carry evidencing edges
        rule = next(r for r in PROJECT_RULES if r.rule_id == "RL102")
        assert len(rule.check_project(index)) == 1

    def test_consistent_cross_class_order_is_clean(self):
        index = index_sources(
            service="""
                import threading
                from worker import Worker

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.worker = Worker()

                    def step(self):
                        with self._lock:
                            self.worker.poke()
            """,
            worker="""
                import threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def poke(self):
                        with self._lock:
                            pass
            """,
        )
        assert index.lock_cycles() == []


class TestServeLayer:
    """The acceptance-criteria assertions about the real serving code."""

    def test_inferred_guard_map(self):
        index = build_index_for_paths([SERVE_DIR])
        assert index.guard_map() == {
            "DynamicModel": {
                "_chain": "_mutate_lock",
                "_current": "_mutate_lock",
            },
            "InfluenceService": {
                "_depth": "_depth_lock",
                "_family_queries": "_count_lock",
                "_oracles": "_oracle_lock",
                "_pools": "_pool_lock",
                "_shard": "_shard_lock",
                "_shard_error": "_shard_lock",
                "_shard_failed": "_shard_lock",
            },
            "ModelCache": {
                "_bytes": "_lock",
                "_models": "_lock",
            },
            "SamplePool": {
                "_coverage": "_lock",
                "_coverage_size": "_lock",
                "_rr_sets": "_lock",
            },
            "ShardRuntime": {
                "_broken": "_lock",
                "_models": "_lock",
                "_workers": "_lock",
            },
        }

    def test_zero_unguarded_mutations_in_serve(self):
        index = build_index_for_paths([SERVE_DIR])
        rule = next(r for r in PROJECT_RULES if r.rule_id == "RL101")
        assert rule.check_project(index) == []

    def test_serve_lock_graph_is_acyclic_with_expected_edges(self):
        index = build_index_for_paths([SERVE_DIR])
        assert index.lock_cycles() == []
        cross = {(a, b) for a, b, _ in index.lock_edges()
                 if a.split(".")[0] != b.split(".")[0]}
        assert cross == {
            ("DynamicModel._mutate_lock", "InfluenceService._oracle_lock"),
            ("DynamicModel._mutate_lock", "InfluenceService._pool_lock"),
            ("DynamicModel._mutate_lock", "ModelCache._lock"),
            ("InfluenceService._build_lock", "ModelCache._lock"),
            ("InfluenceService._shard_lock", "ShardRuntime._lock"),
        }

    def test_whole_library_passes_strict(self):
        violations = lint_paths(
            [PACKAGE_DIR], project_rules=list(PROJECT_RULES),
            report_unused=True,
        )
        assert violations == []


class TestModernSyntax:
    def test_walrus_and_match_parse_through_the_analyzer(self):
        source = textwrap.dedent("""
            import threading

            class Router:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._routes = {}

                def route(self, msg):
                    if (key := msg.get("key")) is None:
                        return None
                    match msg:
                        case {"op": "set", "value": value}:
                            with self._lock:
                                self._routes[key] = value
                        case {"op": "del"}:
                            with self._lock:
                                self._routes.pop(key, None)
                    return key
        """)
        assert lint_source(source) == []
        pf = parse_source(source, display="router.py")
        index = build_index([pf.ctx])
        rule = next(r for r in PROJECT_RULES if r.rule_id == "RL101")
        assert rule.check_project(index) == []
        assert index.guard_map() == {"Router": {"_routes": "_lock"}}

    def test_parenthesized_with_tracks_both_locks(self):
        source = textwrap.dedent("""
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._n = 0

                def both(self):
                    with (self._a, self._b):
                        self._n += 1
        """)
        pf = parse_source(source, display="pair.py")
        index = build_index([pf.ctx])
        assert index.guard_map()["Pair"]["_n"] in {"_a", "_b"}
        assert ("Pair._a", "Pair._b") in {
            (a, b) for a, b, _ in index.lock_edges()
        }


class TestUnusedSuppressions:
    def test_stale_waiver_is_reported(self, tmp_path):
        target = tmp_path / "stale.py"
        target.write_text(
            "x = 1  # reprolint: disable=RL003 - nothing here needs it\n",
            encoding="utf-8",
        )
        violations = lint_paths([target], report_unused=True)
        assert [(v.rule_id, v.line) for v in violations] == [("RL007", 1)]
        assert "RL003" in violations[0].message

    def test_active_waiver_is_not_reported(self, tmp_path):
        target = tmp_path / "active.py"
        target.write_text(
            "import time\n"
            "t = time.time()  # reprolint: disable=RL005 - wall clock ok\n",
            encoding="utf-8",
        )
        assert lint_paths([target], report_unused=True) == []

    def test_waiver_for_unevaluated_rule_is_skipped(self, tmp_path):
        # RL101 only runs under --strict; without it the waiver cannot be
        # judged stale and must not be reported.
        target = tmp_path / "strict_only.py"
        target.write_text(
            "x = 1  # reprolint: disable=RL101 - needs strict\n",
            encoding="utf-8",
        )
        assert lint_paths([target], report_unused=True) == []
        strict = lint_paths(
            [target], project_rules=list(PROJECT_RULES), report_unused=True
        )
        assert [(v.rule_id, v.line) for v in strict] == [("RL007", 1)]

    def test_rl007_is_not_self_suppressible(self, tmp_path):
        target = tmp_path / "meta.py"
        target.write_text(
            "x = 1  # reprolint: disable=RL003,RL007 - have both\n",
            encoding="utf-8",
        )
        violations = lint_paths([target], report_unused=True)
        assert {v.rule_id for v in violations} == {"RL007"}


class TestJsonSchema:
    def test_schema_version_and_tally(self):
        violations = lint_paths(
            [CONCURRENCY / "rl104_bad.py"], rules=[],
            project_rules=list(PROJECT_RULES),
        )
        payload = json.loads(render_json(violations))
        assert payload["schema_version"] == 2
        assert payload["count"] == 3
        assert payload["tally"] == {"RL104": 3}
        assert list(payload["tally"]) == sorted(payload["tally"])
        assert [v["rule"] for v in payload["violations"]] == ["RL104"] * 3

    def test_empty_report_still_carries_version(self):
        payload = json.loads(render_json([]))
        assert payload == {
            "schema_version": 2, "count": 0, "tally": {}, "violations": [],
        }


class TestCli:
    def test_strict_flag_enables_project_rules(self, capsys):
        assert lint_main([str(CONCURRENCY / "rl102_bad.py")]) == 0
        capsys.readouterr()
        assert lint_main(["--strict", str(CONCURRENCY / "rl102_bad.py")]) == 1
        assert "RL102" in capsys.readouterr().out

    def test_bench_profile_drops_rl001_only(self, capsys):
        bad = FIXTURES / "rl001_bad.py"
        assert lint_main([str(bad)]) == 1
        capsys.readouterr()
        assert lint_main(["--profile", "bench", str(bad)]) == 0

    def test_benchmarks_and_scripts_pass_bench_profile(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        targets = [root / "benchmarks", root / "scripts"]
        present = [str(t) for t in targets if t.is_dir()]
        assert present, "benchmarks/ and scripts/ trees are gone?"
        assert lint_main(["--profile", "bench", *present]) == 0

    def test_list_rules_includes_project_pass(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL101", "RL102", "RL103", "RL104", "RL007"):
            assert rule_id in out
