"""Property-based tests (hypothesis) for the core data structures.

Strategies generate random influence graphs and partitions; properties are
the library's structural invariants (DESIGN.md Section 5).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import coarsen, robust_scc_partition
from repro.graph import GraphBuilder, combine_parallel_edges
from repro.partition import Partition, meet_labels, meet_labels_hash
from repro.scc import kosaraju_scc_labels, tarjan_scc_labels


@st.composite
def influence_graphs(draw, max_n: int = 12, max_m: int = 40):
    """A random simple influence graph."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.01, 1.0, allow_nan=False),
            ),
            min_size=m,
            max_size=m,
        )
    )
    builder = GraphBuilder(n=n)
    for u, v, p in edges:
        builder.add_edge(u, v, p)
    return builder.build()


@st.composite
def label_arrays(draw, size: int | None = None, max_label: int = 6):
    n = size if size is not None else draw(st.integers(1, 30))
    return np.asarray(
        draw(st.lists(st.integers(0, max_label), min_size=n, max_size=n)),
        dtype=np.int64,
    )


class TestPartitionLattice:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_meet_implementations_agree(self, data):
        n = data.draw(st.integers(1, 25))
        a = data.draw(label_arrays(size=n))
        b = data.draw(label_arrays(size=n))
        assert np.array_equal(meet_labels(a, b), meet_labels_hash(a, b))

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_meet_is_coarsest_common_refinement(self, data):
        n = data.draw(st.integers(1, 20))
        p = Partition(data.draw(label_arrays(size=n)))
        q = Partition(data.draw(label_arrays(size=n)))
        m = p.meet(q)
        assert m.is_refinement_of(p)
        assert m.is_refinement_of(q)
        # coarsest: block count equals the number of distinct (p, q) pairs
        pairs = {(int(a), int(b)) for a, b in zip(p.labels, q.labels)}
        assert m.n_blocks == len(pairs)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_meet_idempotent_and_commutative(self, data):
        n = data.draw(st.integers(1, 20))
        p = Partition(data.draw(label_arrays(size=n)))
        q = Partition(data.draw(label_arrays(size=n)))
        assert p.meet(p) == p
        assert p.meet(q) == q.meet(p)


class TestSCCProperties:
    @given(influence_graphs())
    @settings(max_examples=50, deadline=None)
    def test_tarjan_kosaraju_equivalent(self, g):
        a = Partition(tarjan_scc_labels(g.indptr, g.heads))
        b = Partition(kosaraju_scc_labels(g.indptr, g.heads))
        assert a == b

    @given(influence_graphs())
    @settings(max_examples=50, deadline=None)
    def test_scc_blocks_are_mutually_reachable(self, g):
        from repro.diffusion import reachable_mask

        p = Partition(tarjan_scc_labels(g.indptr, g.heads))
        for block in p.non_singleton_blocks():
            for v in block:
                mask = reachable_mask(g.indptr, g.heads, np.array([v]))
                assert mask[block].all()


class TestCoarseningProperties:
    @given(influence_graphs(), st.integers(0, 4), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_weight_conservation_and_no_self_loops(self, g, r, seed):
        partition = robust_scc_partition(g, r, rng=seed)
        coarse, pi = coarsen(g, partition)
        assert coarse.total_weight == g.n
        tails, heads, probs = coarse.edge_arrays()
        assert (tails != heads).all()
        assert (probs > 0).all() and (probs <= 1).all()

    @given(influence_graphs(), st.integers(0, 4), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_coarse_sizes_never_grow(self, g, r, seed):
        partition = robust_scc_partition(g, r, rng=seed)
        coarse, _ = coarsen(g, partition)
        assert coarse.n <= g.n
        assert coarse.m <= g.m

    @given(influence_graphs(), st.integers(1, 4), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_coarse_edges_reflect_original_crossings(self, g, r, seed):
        partition = robust_scc_partition(g, r, rng=seed)
        coarse, pi = coarsen(g, partition)
        tails, heads, _ = g.edge_arrays()
        expected = {
            (int(pi[u]), int(pi[v]))
            for u, v in zip(tails, heads)
            if pi[u] != pi[v]
        }
        got = set(zip(*(arr.tolist() for arr in coarse.edge_arrays()[:2])))
        assert got == expected


class TestCombineParallelEdges:
    @given(st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.floats(0.01, 0.99)),
        max_size=30,
    ))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_brute_force(self, raw):
        tails = np.asarray([e[0] for e in raw], dtype=np.int64)
        heads = np.asarray([e[1] for e in raw], dtype=np.int64)
        probs = np.asarray([e[2] for e in raw], dtype=np.float64)
        t, h, p = combine_parallel_edges(tails, heads, probs)
        expected: dict[tuple[int, int], float] = {}
        for u, v, q in raw:
            expected[(u, v)] = expected.get((u, v), 1.0) * (1.0 - q)
        assert t.size == len(expected)
        for u, v, q in zip(t.tolist(), h.tolist(), p.tolist()):
            assert abs(q - (1.0 - expected[(u, v)])) < 1e-9
