"""The 1.0 -> 2.0 deprecation contract.

Every old spelling must (a) emit exactly one DeprecationWarning naming its
replacement, (b) delegate to the same implementation — byte-identical
results — and (c) refuse ambiguous calls that pass both spellings.  The
unified facade must dispatch to the same implementations the old entry
points exposed.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.algorithms import (
    DSSAMaximizer,
    IMMMaximizer,
    MonteCarloEstimator,
    RISEstimator,
    RISMaximizer,
    SSAMaximizer,
    TIMPlusMaximizer,
)
from repro.core import (
    coarsen_influence_graph,
    coarsen_influence_graph_parallel,
    coarsen_influence_graph_sublinear,
)
from repro.storage import TripletStore

from .conftest import random_graph


def one_deprecation(record) -> warnings.WarningMessage:
    """The single DeprecationWarning in a warnings record."""
    relevant = [w for w in record
                if issubclass(w.category, DeprecationWarning)]
    assert len(relevant) == 1
    return relevant[0]


class TestCoarsenShims:
    def test_parallel_shim_warns_and_matches(self):
        g = random_graph(40, 160, seed=2)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            old = coarsen_influence_graph_parallel(
                g, r=4, workers=2, rng=0, executor="thread"
            )
        w = one_deprecation(record)
        assert "coarsen_influence_graph(" in str(w.message)
        new = coarsen_influence_graph(g, r=4, workers=2, rng=0,
                                      executor="thread")
        assert old.coarse == new.coarse
        assert np.array_equal(old.pi, new.pi)

    def test_sublinear_shim_warns_and_matches(self, tmp_path):
        g = random_graph(40, 160, seed=2)
        src = TripletStore.from_graph(g, tmp_path / "g.trip")
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            old = coarsen_influence_graph_sublinear(
                src, tmp_path / "h_old.trip", r=4, rng=0
            )
        w = one_deprecation(record)
        assert "space='sublinear'" in str(w.message)
        src2 = TripletStore.from_graph(g, tmp_path / "g2.trip")
        new = coarsen_influence_graph(
            src2, r=4, rng=0, space="sublinear",
            out_path=tmp_path / "h_new.trip",
        )
        assert old.load().coarse == new.load().coarse

    def test_importing_old_names_does_not_warn(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import (  # noqa: F401
                coarsen_influence_graph_parallel,
                coarsen_influence_graph_sublinear,
            )
        assert record == []


class TestFacadeDispatch:
    def test_serial_matches_old_default(self):
        g = random_graph(40, 160, seed=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            parallel = coarsen_influence_graph_parallel(
                g, r=4, workers=3, rng=1, executor="serial"
            )
        facade = coarsen_influence_graph(g, r=4, workers=3, rng=1,
                                         executor="serial")
        assert parallel.coarse == facade.coarse

    def test_workers_alone_selects_algorithm_6(self):
        g = random_graph(40, 160, seed=4)
        res = coarsen_influence_graph(g, r=4, workers=2, rng=0,
                                      executor="thread")
        assert res.stats.extras["executor"] == "thread"

    def test_linear_rejects_sublinear_knobs(self, tmp_path):
        g = random_graph(20, 60, seed=0)
        from repro.errors import CoarseningError
        with pytest.raises(CoarseningError, match="sublinear"):
            coarsen_influence_graph(g, r=2, out_path=tmp_path / "x")
        with pytest.raises(CoarseningError, match="out_path"):
            coarsen_influence_graph(g, r=2, space="sublinear")


CONSTRUCTOR_CASES = [
    # (factory_old, factory_new, old_kwarg, new_attr)
    (lambda: RISMaximizer(n_sets=321, rng=0),
     lambda: RISMaximizer(n_samples=321, rng=0),
     "n_sets", "n_samples"),
    (lambda: IMMMaximizer(eps=0.3, max_sets=777),
     lambda: IMMMaximizer(eps=0.3, max_samples=777),
     "max_sets", "max_samples"),
    (lambda: TIMPlusMaximizer(eps=0.3, max_sets=777),
     lambda: TIMPlusMaximizer(eps=0.3, max_samples=777),
     "max_sets", "max_samples"),
    (lambda: SSAMaximizer(eps=0.2, max_sets=777),
     lambda: SSAMaximizer(eps=0.2, max_samples=777),
     "max_sets", "max_samples"),
    (lambda: DSSAMaximizer(eps=0.2, max_sets=777),
     lambda: DSSAMaximizer(eps=0.2, max_samples=777),
     "max_sets", "max_samples"),
]


class TestConstructorAliases:
    @pytest.mark.parametrize(
        "factory_old,factory_new,old_kwarg,new_attr",
        CONSTRUCTOR_CASES,
        ids=[c[2] + ":" + type(c[1]()).__name__ for c in CONSTRUCTOR_CASES],
    )
    def test_old_kwarg_warns_once_and_delegates(
        self, factory_old, factory_new, old_kwarg, new_attr
    ):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            obj = factory_old()
        w = one_deprecation(record)
        assert old_kwarg in str(w.message)
        assert new_attr in str(w.message)
        assert getattr(obj, new_attr) == getattr(factory_new(), new_attr)

    @pytest.mark.parametrize(
        "factory_old,factory_new,old_kwarg,new_attr",
        CONSTRUCTOR_CASES,
        ids=[c[2] + ":" + type(c[1]()).__name__ for c in CONSTRUCTOR_CASES],
    )
    def test_new_kwarg_does_not_warn(
        self, factory_old, factory_new, old_kwarg, new_attr
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            factory_new()

    def test_both_spellings_is_an_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="not both"):
                MonteCarloEstimator(n_samples=5, n_simulations=5)
        with pytest.raises(TypeError, match="not both"):
            RISMaximizer(n_samples=5, n_sets=5)
        with pytest.raises(TypeError, match="not both"):
            IMMMaximizer(max_samples=5, max_sets=5)

    def test_deprecated_property_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            est = MonteCarloEstimator(n_samples=42)
            ris = RISMaximizer(n_samples=7, rng=0)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            assert est.n_simulations == 42
            assert ris.n_sets == 7
        assert len(record) == 2

    def test_old_spelling_behaves_identically(self):
        g = random_graph(40, 160, seed=6)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = RISMaximizer(n_sets=2_000, rng=1).select(g, 2)
        new = RISMaximizer(n_samples=2_000, rng=1).select(g, 2)
        assert old.seeds.tolist() == new.seeds.tolist()
        assert old.estimated_influence == new.estimated_influence


class TestEstimatorConstructorDeprecation:
    """Direct ``MonteCarloEstimator``/``RISEstimator`` construction is a
    1.2 deprecation: instances come from the :mod:`repro.estimators`
    registry.  The shims must warn (naming ``make_estimator``), delegate
    byte-identically, and stack with the older keyword-rename shims."""

    @pytest.mark.parametrize("cls,family", [
        (MonteCarloEstimator, "mc"),
        (RISEstimator, "ris"),
    ], ids=["mc", "ris"])
    def test_direct_construction_warns_naming_registry(self, cls, family):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            cls(n_samples=100, rng=0)
        w = one_deprecation(record)
        assert "make_estimator" in str(w.message)
        assert family in str(w.message)

    def test_registry_construction_does_not_warn(self):
        from repro.estimators import make_estimator
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_estimator("mc", n_samples=100, rng=0)
            make_estimator("ris", n_samples=100, rng=0)
            make_estimator("imm", eps=0.3, delta=0.1, rng=0)
            make_estimator("sketch", r=2, k=8, rng=0)

    def test_old_kwarg_stacks_with_constructor_warning(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            est = MonteCarloEstimator(n_simulations=123)
        relevant = [w for w in record
                    if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 2  # constructor + keyword rename
        assert est.n_samples == 123
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            ris = RISEstimator(n_sets=321, rng=0)
        relevant = [w for w in record
                    if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 2
        assert ris.n_samples == 321

    def test_shim_delegates_byte_identically(self):
        from repro.estimators import make_estimator
        g = random_graph(40, 160, seed=8)
        seeds = np.array([0, 3])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old_mc = MonteCarloEstimator(500, rng=7).estimate(g, seeds)
            old_ris = RISEstimator(n_samples=800, rng=7).estimate(g, seeds)
        new_mc = make_estimator("mc", n_samples=500, rng=7).estimate(g, seeds)
        new_ris = make_estimator("ris", n_samples=800, rng=7).estimate(
            g, seeds)
        assert old_mc == new_mc
        assert old_ris == new_ris

    def test_from_coverage_does_not_warn(self):
        from repro.diffusion.rr_sets import CoverageInstance, RRSampler
        g = random_graph(30, 90, seed=9)
        sampler = RRSampler(g, rng=0)
        coverage = CoverageInstance(sampler.sample_batch(50), g.n)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            est = RISEstimator.from_coverage(g, coverage,
                                             sampler.total_weight)
        assert est.n_samples == 50
