"""Cross-executor determinism, broadcast accounting, and the meet tree.

The contract under test: for a fixed ``(r, workers, seed)`` the three
executors of Algorithm 6 are *byte-identical* — same partition labels, same
coarse CSR — because the per-worker RNG streams are derived before any pool
exists and the pairwise meet tree is exact (Theorem 4.11).  The process
executor additionally must broadcast the graph exactly once per pool
(asserted through the ``coarsen.parallel.broadcast_bytes`` metric, not
timing).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import GraphHandle, coarsen_influence_graph
from repro.errors import AlgorithmError, PartitionError
from repro.partition import Partition, meet_all

from .conftest import random_graph


def _run(graph, executor, r=8, workers=4, rng=3):
    return coarsen_influence_graph(
        graph, r=r, workers=workers, rng=rng, executor=executor
    )


def _assert_identical(a, b):
    assert np.array_equal(a.partition.labels, b.partition.labels)
    assert np.array_equal(a.pi, b.pi)
    assert np.array_equal(a.coarse.indptr, b.coarse.indptr)
    assert np.array_equal(a.coarse.heads, b.coarse.heads)
    assert np.array_equal(a.coarse.probs, b.coarse.probs)
    assert np.array_equal(a.coarse.weights, b.coarse.weights)


class TestCrossExecutorDeterminism:
    def test_serial_vs_thread_byte_identical(self):
        g = random_graph(60, 240, seed=2, p_low=0.2, p_high=0.9)
        _assert_identical(_run(g, "serial"), _run(g, "thread"))

    @pytest.mark.parallel
    def test_serial_vs_process_byte_identical(self):
        g = random_graph(60, 240, seed=2, p_low=0.2, p_high=0.9)
        _assert_identical(_run(g, "serial"), _run(g, "process"))

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_all_executors_all_worker_counts(self, workers):
        g = random_graph(40, 160, seed=4, p_low=0.3, p_high=0.9)
        serial = _run(g, "serial", workers=workers)
        for executor in ("thread", "process"):
            _assert_identical(serial, _run(g, executor, workers=workers))

    def test_repeat_run_stable(self):
        g = random_graph(40, 160, seed=1, p_low=0.3, p_high=0.9)
        _assert_identical(_run(g, "thread"), _run(g, "thread"))


class TestBroadcastAccounting:
    @pytest.mark.parallel
    def test_graph_broadcast_exactly_once_per_pool(self):
        """A 10^5-edge graph crosses the process boundary once, as one segment.

        The counter sums the published segment payloads; were the graph
        pickled per submitted task (the old behaviour) or re-published per
        worker, the total would be a multiple of the CSR payload.
        """
        g = random_graph(20_000, 100_000, seed=0, p_low=0.05, p_high=0.35)
        payload = 8 * (g.n + 1) + 16 * g.m
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            res = coarsen_influence_graph(
                g, r=4, workers=4, rng=0, executor="process"
            )
        assert registry.counter("coarsen.parallel.broadcast_bytes") == payload
        assert res.stats.extras["broadcast_bytes"] == payload
        assert res.stats.stage_seconds["broadcast"] > 0.0

    def test_no_broadcast_for_in_process_executors(self, two_cliques_graph):
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            res = _run(two_cliques_graph, "thread")
        assert registry.counter("coarsen.parallel.broadcast_bytes") == 0
        assert "broadcast_bytes" not in res.stats.extras
        assert "broadcast" not in res.stats.stage_seconds

    @pytest.mark.parallel
    def test_segment_released_after_run(self, two_cliques_graph, monkeypatch):
        """The run's own segment is unlinked once the pool is done."""
        from repro.errors import GraphFormatError
        from repro.graph import shm as shm_mod

        published = []
        original = shm_mod.SharedGraph.publish.__func__

        def spying_publish(cls, graph):
            shared = original(cls, graph)
            published.append(shared.spec)
            return shared

        monkeypatch.setattr(shm_mod.SharedGraph, "publish",
                            classmethod(spying_publish))
        res = _run(two_cliques_graph, "process")
        assert res.coarse.n >= 1
        assert len(published) == 1
        with pytest.raises(GraphFormatError, match="does not exist"):
            shm_mod.attach_shared_graph(published[0])


class TestGraphHandle:
    def test_inline_handle_resolves_to_same_object(self, two_cliques_graph):
        handle = GraphHandle(graph=two_cliques_graph)
        assert handle.resolve() is two_cliques_graph

    def test_inline_handle_refuses_pickle(self, two_cliques_graph):
        handle = GraphHandle(graph=two_cliques_graph)
        with pytest.raises(AlgorithmError, match="refusing to pickle"):
            pickle.dumps(handle)

    def test_spec_handle_pickles_small(self, two_cliques_graph):
        from repro.graph import SharedGraph
        with SharedGraph.publish(two_cliques_graph) as shared:
            handle = GraphHandle(spec=shared.spec)
            blob = pickle.dumps(handle)
            # The whole point: submitting a task ships bytes-sized state,
            # not the graph (whose CSR payload alone is spec.nbytes).
            assert len(blob) < 512
            assert len(blob) < shared.spec.nbytes
            restored = pickle.loads(blob)
            assert restored.resolve() == two_cliques_graph
        from repro.graph import detach_shared_graphs
        detach_shared_graphs()

    def test_handle_requires_exactly_one_of_graph_spec(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            GraphHandle()
        with pytest.raises(AlgorithmError):
            GraphHandle(graph=two_cliques_graph,
                        spec=object())  # type: ignore[arg-type]


def _left_fold(partitions):
    acc = partitions[0]
    for p in partitions[1:]:
        acc = acc.meet(p)
    return acc


class TestMeetTree:
    @given(
        labels=st.lists(
            st.lists(st.integers(min_value=0, max_value=5),
                     min_size=12, max_size=12),
            min_size=1, max_size=7,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_tree_reduction_equals_left_fold(self, labels):
        partitions = [Partition(np.asarray(row, dtype=np.int64))
                      for row in labels]
        tree = meet_all(partitions)
        fold = _left_fold(partitions)
        assert tree == fold
        assert np.array_equal(tree.labels, fold.labels)

    def test_single_partition_returned_unchanged(self):
        p = Partition(np.array([0, 0, 1, 1]))
        assert meet_all([p]) is p

    def test_empty_input_rejected(self):
        with pytest.raises(PartitionError):
            meet_all([])

    def test_depth_counter(self):
        registry = obs.MetricsRegistry()
        parts = [Partition(np.arange(4) % (i + 1)) for i in range(5)]
        with obs.use_metrics(registry):
            meet_all(parts)
        # ceil(log2(5)) = 3 levels
        assert registry.counter("meet.tree_depth") == 3

    def test_map_fn_is_used_per_level(self):
        calls = []

        def spy_map(fn, pairs):
            pairs = list(pairs)
            calls.append(len(pairs))
            return [fn(p) for p in pairs]

        parts = [Partition(np.arange(6) % k) for k in (1, 2, 3, 6, 2)]
        tree = meet_all(parts, map_fn=spy_map)
        assert calls == [2, 1, 1]  # 5 -> 3 -> 2 -> 1
        assert tree == _left_fold(parts)

    def test_tree_meet_inside_thread_pool_matches(self):
        import concurrent.futures

        parts = [Partition(np.random.default_rng(i).integers(0, 4, 20))
                 for i in range(6)]
        with concurrent.futures.ThreadPoolExecutor(max_workers=3) as pool:
            pooled = meet_all(parts, map_fn=pool.map)
        assert pooled == meet_all(parts)
