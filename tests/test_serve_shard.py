"""Tests for sharded multi-process serving (repro.serve.shard).

The load-bearing property is the cross-executor digest: sequential,
batched, and sharded execution of the same queries must return
bit-for-bit identical values, because the indexed-stream discipline makes
sample ``i`` a pure function of ``(entropy, i)`` no matter which process
draws it.  The worker-fleet tests spawn real processes and are marked
``shard`` (CI runs them under the lock sanitizer in a dedicated job);
the shard-assembly tests drive ``_WorkerShard`` in-process and are cheap.
"""

import hashlib
import json
import time

import numpy as np
import pytest

from repro import obs
from repro.errors import AlgorithmError
from repro.rng import derive_entropy, ensure_rng
from repro.serve import InfluenceService, ServiceConfig
from repro.serve.pool import SamplePool
from repro.serve.shard import (
    ShardError,
    ShardRuntime,
    _WorkerShard,
    _global_prefix,
)

from .conftest import random_graph


@pytest.fixture(scope="module")
def graph():
    return random_graph(300, 1_500, seed=11)


def _digest(values):
    payload = json.dumps([v.hex() for v in values]).encode()
    return hashlib.blake2b(payload, digest_size=12).hexdigest()


class TestShardAssembly:
    """In-process checks of the strided-shard arithmetic (no spawning)."""

    def test_worker_shards_reassemble_the_serial_pool(self, graph):
        pool = SamplePool(graph, rng=ensure_rng(7))
        n = 200
        pool.ensure(n)
        n_workers = 3
        shards = [
            _WorkerShard(graph, k, n_workers, pool.entropy, "ic",
                         chunk_sets=64)
            for k in range(n_workers)
        ]
        counts = [shard.grow(n, deadline=None) for shard in shards]
        assert _global_prefix(counts, n_workers) >= n
        # Interleave the shards back into draw order: global i came from
        # worker i % T at local position i // T.
        for i in range(n):
            local = shards[i % n_workers].rr_sets[i // n_workers]
            np.testing.assert_array_equal(local, pool._rr_sets[i])

    def test_local_target_covers_exactly_the_prefix(self):
        # Worker k needs ceil((P - k) / T) samples for global prefix P.
        for n_workers in (1, 2, 3, 5):
            for prefix in range(0, 30):
                covered = 0
                for k in range(n_workers):
                    shard = _WorkerShard.__new__(_WorkerShard)
                    shard.worker_id = k
                    shard.n_workers = n_workers
                    covered += shard.local_target(prefix)
                assert covered == prefix

    def test_global_prefix_is_first_missing_index(self):
        # counts = [2, 1] over T=2: indices 0,2 and 1 -> prefix 3.
        assert _global_prefix([2, 1], 2) == 3
        # Worker 1 empty: index 1 missing immediately.
        assert _global_prefix([5, 0], 2) == 1
        assert _global_prefix([0, 0, 0], 3) == 0
        assert _global_prefix([4], 1) == 4


@pytest.mark.shard
class TestShardRuntime:
    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ShardError):
            ShardRuntime(0)

    def test_grow_score_and_reuse(self, graph):
        entropy = derive_entropy(ensure_rng(3))
        pool = SamplePool(graph, rng=ensure_rng(3))
        pool.ensure(400)
        seeds = np.asarray([0, 9, 44], dtype=np.int64)
        with ShardRuntime(2) as runtime:
            shard_pool = runtime.pool_for("tok", graph, entropy)
            assert shard_pool.ensure(400) == 400
            assert shard_pool.size >= 400
            for prefix in (100, 250, 400):
                want = pool.estimator(prefix).estimate(graph, seeds)
                got = shard_pool.estimator(prefix).estimate(graph, seeds)
                assert got == want
            # Re-ensure is pure reuse: no new draws.
            registry = obs.MetricsRegistry()
            with obs.use_metrics(registry):
                assert shard_pool.ensure(300) == 300
            counters = registry.snapshot()["counters"]
            assert counters.get("serve.shard.drawn", 0) == 0

    def test_deadline_degrades_and_stays_bit_identical(self, graph):
        entropy = derive_entropy(ensure_rng(5))
        with ShardRuntime(2) as runtime:
            shard_pool = runtime.pool_for("tok", graph, entropy)
            achieved = shard_pool.ensure(
                500_000, deadline=time.monotonic() + 0.05)
            assert 0 < achieved < 500_000
            seeds = np.asarray([1, 2], dtype=np.int64)
            got = shard_pool.estimator(achieved).estimate(graph, seeds)
        pool = SamplePool(graph, rng=ensure_rng(5))
        pool.ensure(achieved)
        assert got == pool.estimator(achieved).estimate(graph, seeds)

    def test_worker_crash_is_detected_and_latches_broken(self, graph):
        entropy = derive_entropy(ensure_rng(1))
        runtime = ShardRuntime(2)
        try:
            shard_pool = runtime.pool_for("tok", graph, entropy)
            shard_pool.ensure(100)
            runtime._workers[0].process.terminate()
            runtime._workers[0].process.join()
            with pytest.raises(ShardError):
                shard_pool.ensure(10_000)
            assert runtime.broken
            with pytest.raises(ShardError):
                shard_pool.ensure(100)  # broken fleet refuses all work
        finally:
            runtime.close()

    def test_retain_detaches_stale_models(self, graph):
        small = random_graph(50, 200, seed=4)
        entropy = derive_entropy(ensure_rng(0))
        with ShardRuntime(2) as runtime:
            runtime.pool_for("keep", graph, entropy)
            runtime.pool_for("drop", small, entropy)
            assert set(runtime.stats()["models"]) == {"keep", "drop"}
            runtime.retain({"keep"})
            assert set(runtime.stats()["models"]) == {"keep"}
            # The kept model still serves.
            assert runtime.grow("keep", 50) == 50

    def test_estimator_validates_inputs(self, graph):
        entropy = derive_entropy(ensure_rng(0))
        with ShardRuntime(1) as runtime:
            shard_pool = runtime.pool_for("tok", graph, entropy)
            shard_pool.ensure(50)
            with pytest.raises(AlgorithmError):
                shard_pool.estimator(0)
            estimator = shard_pool.estimator(50)
            with pytest.raises(AlgorithmError):
                estimator.estimate(graph, np.asarray([], dtype=np.int64))
            other = random_graph(20, 60, seed=9)
            with pytest.raises(AlgorithmError):
                estimator.estimate(other, np.asarray([0], dtype=np.int64))


@pytest.mark.shard
class TestShardedService:
    """The service-level contract: sharded == batched == sequential."""

    def test_cross_executor_digest_equality(self, graph):
        seed_sets = [[i, (i * 3 + 1) % graph.n] for i in range(10)]
        config = dict(r=6, seed=2, n_samples=1_200, min_samples=64)
        with InfluenceService(ServiceConfig(**config)) as service:
            sequential = [
                np.float64(service.estimate(graph, seeds).value)
                for seeds in seed_sets
            ]
        with InfluenceService(ServiceConfig(**config)) as service:
            batched = [
                np.float64(r.value)
                for r in service.estimate_many(graph, seed_sets)
            ]
        with InfluenceService(
                ServiceConfig(**config, shard_workers=2)) as service:
            sharded = [
                np.float64(r.value)
                for r in service.estimate_many(graph, seed_sets)
            ]
            assert service.stats()["shard"]["runtime"]["workers"] == 2
        assert _digest(sequential) == _digest(batched) == _digest(sharded)

    def test_crash_falls_back_in_process_bit_for_bit(self, graph):
        seed_sets = [[0, 5], [7], [3, 9, 21]]
        config = dict(r=6, seed=2, n_samples=800, min_samples=64)
        with InfluenceService(ServiceConfig(**config)) as service:
            expected = [
                r.value for r in service.estimate_many(graph, seed_sets)
            ]
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            with InfluenceService(
                    ServiceConfig(**config, shard_workers=2)) as service:
                first = [
                    r.value for r in service.estimate_many(graph, seed_sets)
                ]
                with service._shard_lock:
                    runtime = service._shard
                for worker in runtime._workers:
                    worker.process.terminate()
                    worker.process.join()
                after = [
                    r.value for r in service.estimate_many(graph, seed_sets)
                ]
                stats = service.stats()
        assert first == expected
        assert after == expected
        assert stats["shard"]["failed"]
        assert stats["shard"]["error"]
        counters = registry.snapshot()["counters"]
        assert counters.get("serve.shard.fallback") == 1

    def test_batched_deadline_degradation_under_sharded_growth(self, graph):
        # Satellite: serve.deadline.degraded must account one increment
        # per degraded query in a batch, sharded or not, and every
        # degraded result must carry the achieved-accuracy report.
        seed_sets = [[i] for i in range(4)]
        config = dict(r=6, seed=2, n_samples=2_000_000, min_samples=32,
                      deadline_seconds=0.05, report_samples=50)
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            with InfluenceService(
                    ServiceConfig(**config, shard_workers=2)) as service:
                results = service.estimate_many(graph, seed_sets)
        assert all(r.degraded for r in results)
        assert all(r.n_samples < r.requested_samples for r in results)
        assert all(r.report is not None for r in results)
        counters = registry.snapshot()["counters"]
        assert counters.get("serve.deadline.degraded") == len(seed_sets)

    def test_maximize_uses_in_process_pool(self, graph):
        config = dict(r=6, seed=2, n_samples=600, min_samples=64)
        with InfluenceService(ServiceConfig(**config)) as service:
            expected = service.maximize(graph, k=3)
        with InfluenceService(
                ServiceConfig(**config, shard_workers=2)) as service:
            service.estimate(graph, [0])  # spin the fleet up first
            result = service.maximize(graph, k=3)
        np.testing.assert_array_equal(result.seeds, expected.seeds)
        assert result.estimated_influence == expected.estimated_influence
