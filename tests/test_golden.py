"""Golden regression tests: pinned deterministic outputs.

Every number here was produced by the current implementation under fixed
seeds and then *pinned*.  A failure means behaviour changed — intentionally
(update the pin and say why in the commit) or by accident (a real
regression in sampling order, SCC labelling, meet canonicalisation, or the
generators).  These complement the invariant tests, which would not notice
a silent distribution shift.
"""

import numpy as np
import pytest

from repro.core import coarsen_influence_graph
from repro.datasets import load_dataset

# (dataset, setting) -> (n, m, |W|, |F|) at r=16, topology seed 0, coarsen
# seed 0.  Table 3's measured values come from exactly these runs.
GOLDEN_COARSENING = {
    # Re-pinned after the preferential-attachment generator switched to
    # sorted target iteration (reprolint RL003): set iteration order was a
    # CPython implementation detail the rng consumption sequence leaked
    # through.  Same distribution family, new pinned draw.
    ("ca-hepph", "exp"): (4249, 76110, 3667, 25968),
    ("soc-slashdot", "exp"): (3000, 70815, 2731, 24385),
    ("web-notredame", "exp"): (3200, 28280, 3167, 22629),
    ("wiki-talk", "exp"): (6000, 19180, 5912, 11927),
    ("soc-slashdot", "tri"): (3000, 70815, 2790, 29432),
    ("soc-slashdot", "uc"): (3000, 70815, 2731, 24385),
    ("soc-slashdot", "wc"): (3000, 70815, 3000, 70815),
}


@pytest.mark.parametrize("key", sorted(GOLDEN_COARSENING))
def test_pinned_coarsening_output(key):
    name, setting = key
    n, m, w, f = GOLDEN_COARSENING[key]
    graph = load_dataset(name, setting, seed=0)
    assert (graph.n, graph.m) == (n, m), "generator output drifted"
    result = coarsen_influence_graph(graph, r=16, rng=0)
    assert (result.coarse.n, result.coarse.m) == (w, f), (
        "coarsening output drifted"
    )


def test_pinned_paper_example_q():
    """The q(c1, c2) = 0.44 of Example 4.2, pinned end to end."""
    from repro.core import coarsen
    from repro.graph import GraphBuilder
    from repro.partition import Partition

    builder = GraphBuilder(n=9)
    for u, v, p in [
        (0, 1, 0.6), (1, 0, 0.7), (1, 2, 0.8), (2, 0, 0.9),
        (1, 3, 0.3), (2, 3, 0.2), (3, 4, 0.4), (4, 5, 0.5), (5, 4, 0.6),
        (5, 6, 0.3), (6, 7, 0.2), (7, 8, 0.4), (8, 7, 0.5),
    ]:
        builder.add_edge(u, v, p)
    partition = Partition.from_blocks(
        [[0, 1, 2], [3], [4, 5], [6], [7, 8]], 9
    )
    coarse, _ = coarsen(builder.build(), partition)
    q = {(int(a), int(b)): float(p) for a, b, p in zip(*coarse.edge_arrays())}
    assert q == pytest.approx({
        (0, 1): 0.44, (1, 2): 0.4, (2, 3): 0.3, (3, 4): 0.2,
    })


def test_pinned_robust_scc_partition_hash():
    """Full partition content pinned via a stable hash."""
    graph = load_dataset("soc-slashdot", "exp", seed=0)
    result = coarsen_influence_graph(graph, r=16, rng=0)
    digest = hash(result.partition)  # canonical labels -> stable bytes hash
    # the giant robust SCC's size is the meaningful scalar to pin
    assert int(result.partition.block_sizes().max()) == 270
    assert result.pi.sum() == int(result.pi.sum())  # sanity: finite ints
    assert digest == hash(result.partition)  # self-consistent
