"""Tests for coarsening persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.core import coarsen_influence_graph
from repro.core.persistence import load_coarsening, save_coarsening
from repro.errors import GraphFormatError

from .conftest import random_graph


class TestRoundTrip:
    def test_everything_preserved(self, tmp_path, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        path = tmp_path / "coarse.npz"
        save_coarsening(result, path)
        back = load_coarsening(path)
        assert back.coarse == result.coarse
        assert np.array_equal(back.pi, result.pi)
        assert back.partition == result.partition
        assert back.stats.r == 4
        assert back.stats.input_edges == two_cliques_graph.m

    def test_loaded_result_usable_by_frameworks(self, tmp_path,
                                                two_cliques_graph):
        from repro.algorithms import MonteCarloEstimator
        from repro.core import estimate_on_coarse

        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        path = tmp_path / "coarse.npz"
        save_coarsening(result, path)
        back = load_coarsening(path)
        a = estimate_on_coarse(result, np.array([0]),
                               MonteCarloEstimator(2_000, rng=1))
        b = estimate_on_coarse(back, np.array([0]),
                               MonteCarloEstimator(2_000, rng=1))
        assert a == b

    def test_random_graphs_round_trip(self, tmp_path):
        for seed in range(3):
            g = random_graph(30, 90, seed=seed, p_low=0.3, p_high=0.95)
            result = coarsen_influence_graph(g, r=3, rng=seed)
            path = tmp_path / f"c{seed}.npz"
            save_coarsening(result, path)
            assert load_coarsening(path).coarse == result.coarse


class TestFormatGuards:
    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, wrong=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a repro"):
            load_coarsening(path)

    def test_future_version_rejected(self, tmp_path, two_cliques_graph):
        import json

        result = coarsen_influence_graph(two_cliques_graph, r=2, rng=0)
        path = tmp_path / "coarse.npz"
        save_coarsening(result, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(GraphFormatError, match="newer format"):
            load_coarsening(path)
