"""Tests for coarsening persistence (save/load round trips)."""

import json

import numpy as np
import pytest

from repro.core import coarsen_influence_graph
from repro.core.persistence import load_coarsening, save_coarsening
from repro.errors import GraphFormatError

from .conftest import random_graph


class TestRoundTrip:
    def test_everything_preserved(self, tmp_path, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        path = tmp_path / "coarse.npz"
        save_coarsening(result, path)
        back = load_coarsening(path)
        assert back.coarse == result.coarse
        assert np.array_equal(back.pi, result.pi)
        assert back.partition == result.partition
        assert back.stats.r == 4
        assert back.stats.input_edges == two_cliques_graph.m

    def test_loaded_result_usable_by_frameworks(self, tmp_path,
                                                two_cliques_graph):
        from repro.estimators import make_estimator
        from repro.core import estimate_on_coarse

        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        path = tmp_path / "coarse.npz"
        save_coarsening(result, path)
        back = load_coarsening(path)
        a = estimate_on_coarse(result, np.array([0]),
                               make_estimator("mc", n_samples=2_000, rng=1))
        b = estimate_on_coarse(back, np.array([0]),
                               make_estimator("mc", n_samples=2_000, rng=1))
        assert a == b

    def test_random_graphs_round_trip(self, tmp_path):
        for seed in range(3):
            g = random_graph(30, 90, seed=seed, p_low=0.3, p_high=0.95)
            result = coarsen_influence_graph(g, r=3, rng=seed)
            path = tmp_path / f"c{seed}.npz"
            save_coarsening(result, path)
            assert load_coarsening(path).coarse == result.coarse

    def test_stage_seconds_and_extras_preserved(self, tmp_path,
                                                two_cliques_graph):
        """v2 fixes the round trip dropping the very stats a parallel run
        produces: the per-stage breakdown and workers/executor/rounds."""
        result = coarsen_influence_graph(
            two_cliques_graph, r=6, workers=3, rng=0, executor="serial"
        )
        assert result.stats.stage_seconds  # sanity: there is something to lose
        assert result.stats.extras["executor"] == "serial"
        path = tmp_path / "par.npz"
        save_coarsening(result, path)
        back = load_coarsening(path)
        assert back.stats.stage_seconds == result.stats.stage_seconds
        assert back.stats.extras["workers"] == 3
        assert back.stats.extras["requested_workers"] == 3
        assert back.stats.extras["executor"] == "serial"
        assert back.stats.extras["rounds"] == result.stats.extras["rounds"]

    def test_numpy_scalars_in_extras_serialise(self, tmp_path,
                                               two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=2, rng=0)
        result.stats.extras["np_int"] = np.int64(7)
        result.stats.extras["np_float"] = np.float64(0.5)
        path = tmp_path / "npext.npz"
        save_coarsening(result, path)
        back = load_coarsening(path)
        assert back.stats.extras["np_int"] == 7
        assert back.stats.extras["np_float"] == 0.5


class TestPathNormalisation:
    def test_suffixless_path_round_trips(self, tmp_path, two_cliques_graph):
        """numpy silently appends .npz on save; load must follow suit."""
        result = coarsen_influence_graph(two_cliques_graph, r=3, rng=0)
        path = tmp_path / "coarse"  # no suffix
        save_coarsening(result, path)
        assert (tmp_path / "coarse.npz").exists()
        back = load_coarsening(path)  # same suffixless spelling
        assert back.coarse == result.coarse

    def test_suffixless_and_suffixed_name_same_archive(self, tmp_path,
                                                       two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=3, rng=0)
        save_coarsening(result, tmp_path / "c")
        assert load_coarsening(tmp_path / "c.npz").coarse == result.coarse

    def test_missing_archive_reports_resolved_name(self, tmp_path):
        with pytest.raises(GraphFormatError,
                           match=r"gone\.npz: no such coarsening archive"):
            load_coarsening(tmp_path / "gone")


class TestVersionCompat:
    def test_v1_archive_still_loads(self, tmp_path, two_cliques_graph):
        """Archives written by the version-1 layout (no stage_seconds or
        extras in the meta blob) load with empty dicts."""
        result = coarsen_influence_graph(
            two_cliques_graph, r=4, workers=2, rng=0, executor="serial"
        )
        path = tmp_path / "v1.npz"
        save_coarsening(result, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 1
        del meta["stage_seconds"]
        del meta["extras"]
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        back = load_coarsening(path)
        assert back.coarse == result.coarse
        assert np.array_equal(back.pi, result.pi)
        assert back.stats.r == 4
        assert back.stats.stage_seconds == {}
        assert back.stats.extras == {}

    def test_v2_archive_declares_version_2(self, tmp_path, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=2, rng=0)
        path = tmp_path / "v2.npz"
        save_coarsening(result, path)
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
        assert meta["version"] == 2
        assert "stage_seconds" in meta
        assert "extras" in meta


class TestFormatGuards:
    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, wrong=np.arange(3))
        with pytest.raises(GraphFormatError, match="not a repro"):
            load_coarsening(path)

    def test_future_version_rejected(self, tmp_path, two_cliques_graph):
        import json

        result = coarsen_influence_graph(two_cliques_graph, r=2, rng=0)
        path = tmp_path / "coarse.npz"
        save_coarsening(result, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(GraphFormatError, match="newer format"):
            load_coarsening(path)
