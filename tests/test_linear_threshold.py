"""Tests for the Linear Threshold extension."""

import numpy as np
import pytest

from repro.diffusion.linear_threshold import (
    estimate_influence_lt,
    sample_lt_live_edges,
    simulate_lt_once,
    validate_lt_weights,
)
from repro.datasets import assign_weighted_cascade
from repro.errors import AlgorithmError

from .conftest import build_graph, random_graph


def wc_graph(seed=0, n=20, m=60):
    """A random graph with WC weights (valid LT weights by construction)."""
    return assign_weighted_cascade(random_graph(n, m, seed=seed))


class TestValidation:
    def test_wc_weights_pass(self):
        validate_lt_weights(wc_graph())

    def test_overweight_vertex_rejected(self):
        g = build_graph(3, [(0, 2, 0.8), (1, 2, 0.7)])
        with pytest.raises(AlgorithmError, match="incoming mass"):
            validate_lt_weights(g)

    def test_estimator_validates(self):
        g = build_graph(3, [(0, 2, 0.8), (1, 2, 0.7)])
        with pytest.raises(AlgorithmError):
            estimate_influence_lt(g, np.array([0]), 10, rng=0)


class TestLiveEdgeSampling:
    def test_at_most_one_in_edge_per_vertex(self):
        g = wc_graph(1)
        for trial in range(10):
            indptr, heads = sample_lt_live_edges(g, rng=trial)
            counts = np.bincount(heads, minlength=g.n)
            assert counts.max(initial=0) <= 1

    def test_selection_probabilities(self):
        # v2 has in-edges from 0 (w=0.6) and 1 (w=0.3); no edge w.p. 0.1
        g = build_graph(3, [(0, 2, 0.6), (1, 2, 0.3)])
        rng = np.random.default_rng(0)
        from_zero = from_one = none = 0
        for _ in range(4000):
            indptr, heads = sample_lt_live_edges(g, rng)
            tails = np.repeat(np.arange(3), np.diff(indptr))
            pairs = set(zip(tails.tolist(), heads.tolist()))
            if (0, 2) in pairs:
                from_zero += 1
            elif (1, 2) in pairs:
                from_one += 1
            else:
                none += 1
        assert from_zero / 4000 == pytest.approx(0.6, abs=0.03)
        assert from_one / 4000 == pytest.approx(0.3, abs=0.03)
        assert none / 4000 == pytest.approx(0.1, abs=0.03)


class TestSimulation:
    def test_seeds_always_active(self):
        g = wc_graph(2)
        active = simulate_lt_once(g, np.array([3]), rng=0)
        assert active[3]

    def test_empty_seed_rejected(self):
        g = wc_graph(3)
        with pytest.raises(AlgorithmError):
            simulate_lt_once(g, np.array([], dtype=np.int64), rng=0)

    def test_deterministic_chain_with_weight_one(self):
        # b(0,1) = b(1,2) = 1.0: thresholds are always crossed
        g = build_graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        active = simulate_lt_once(g, np.array([0]), rng=0)
        assert active.all()

    def test_two_methods_agree_in_distribution(self):
        """KKT equivalence: threshold simulation == live-edge reachability."""
        g = wc_graph(4, n=15, m=40)
        seeds = np.array([0, 1])
        a = estimate_influence_lt(g, seeds, 6_000, rng=0, method="live-edge")
        b = estimate_influence_lt(g, seeds, 6_000, rng=1, method="threshold")
        assert a == pytest.approx(b, rel=0.05)

    def test_exact_two_vertex_case(self):
        # single edge with weight w: Inf({0}) = 1 + w exactly
        g = build_graph(2, [(0, 1, 0.35)])
        est = estimate_influence_lt(g, np.array([0]), 20_000, rng=0)
        assert est == pytest.approx(1.35, abs=0.02)
