"""Tests for reprolint (``repro.lint``): rules, suppressions, CLI, and the
self-check that the library itself is clean.

The fixture corpus lives in ``tests/lint_fixtures/`` — one violating and
one clean file per rule (RL004's pair sits under ``scc/`` because the rule
is path-scoped to the kernel modules), plus two suppression fixtures.
"""

import json
import pathlib

import pytest

import repro
from repro.lint import (
    RULES,
    Violation,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    rule_ids,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import package_relative, parse_suppressions

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"
PACKAGE_DIR = pathlib.Path(repro.__file__).resolve().parent


def lint_fixture(name: str) -> list[Violation]:
    path = FIXTURES / name
    return lint_source(
        path.read_text(encoding="utf-8"),
        display=name,
        package_rel=package_relative(path, FIXTURES),
    )


def hits(name: str, rule_id: str) -> list[tuple[str, int]]:
    return [
        (v.rule_id, v.line) for v in lint_fixture(name) if v.rule_id == rule_id
    ]


# (rule, bad fixture, expected violation lines, clean fixture)
RULE_CASES = [
    ("RL001", "rl001_bad.py", [3, 5, 9], "rl001_ok.py"),
    ("RL002", "rl002_bad.py", [3, 9, 13, 17], "rl002_ok.py"),
    ("RL003", "rl003_bad.py", [6, 12, 17, 22, 26, 30], "rl003_ok.py"),
    ("RL004", "scc/rl004_bad.py", [7, 8, 9, 10, 15], "scc/rl004_ok.py"),
    ("RL005", "rl005_bad.py", [5, 9, 11], "rl005_ok.py"),
    ("RL006", "rl006_bad.py", [7, 14, 21], "rl006_ok.py"),
]


class TestRules:
    @pytest.mark.parametrize(
        "rule_id,bad,lines,ok", RULE_CASES, ids=[c[0] for c in RULE_CASES]
    )
    def test_rule_fires_with_id_and_lines(self, rule_id, bad, lines, ok):
        assert hits(bad, rule_id) == [(rule_id, line) for line in lines]

    @pytest.mark.parametrize(
        "rule_id,bad,lines,ok", RULE_CASES, ids=[c[0] for c in RULE_CASES]
    )
    def test_clean_fixture_is_clean(self, rule_id, bad, lines, ok):
        assert lint_fixture(ok) == []

    @pytest.mark.parametrize(
        "rule_id,bad,lines,ok", RULE_CASES, ids=[c[0] for c in RULE_CASES]
    )
    def test_bad_fixture_violates_only_its_own_rule(
        self, rule_id, bad, lines, ok
    ):
        assert {v.rule_id for v in lint_fixture(bad)} == {rule_id}

    def test_rule_catalogue(self):
        assert rule_ids() == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        ]
        for rule in RULES:
            assert rule.title and rule.rationale

    def test_rl004_is_scoped_to_kernel_paths(self):
        source = (FIXTURES / "scc/rl004_bad.py").read_text(encoding="utf-8")
        # Same code outside scc/ or core/ is out of the rule's scope.
        assert lint_source(source, package_rel="datasets/generators.py") == []
        assert lint_source(source, package_rel="core/coarsen.py") != []

    def test_rl002_exempts_rng_module(self):
        source = "import numpy as np\ngen = np.random.default_rng(0)\n"
        assert lint_source(source, package_rel="rng.py") == []
        assert [v.rule_id for v in lint_source(source, package_rel="x.py")] \
            == ["RL002"]

    def test_syntax_error_reports_rl000(self):
        (violation,) = lint_source("def broken(:\n", display="broken.py")
        assert violation.rule_id == "RL000"
        assert "parse" in violation.message


class TestSuppressions:
    def test_inline_and_file_level_suppressions_silence(self):
        assert lint_fixture("suppressed.py") == []
        assert lint_fixture("suppressed_file.py") == []

    def test_without_comment_the_same_code_fires(self):
        source = (FIXTURES / "suppressed.py").read_text(encoding="utf-8")
        stripped = "\n".join(
            line.split("# reprolint:")[0] for line in source.splitlines()
        )
        found = {v.rule_id for v in lint_source(stripped)}
        assert {"RL001", "RL002", "RL003", "RL006"} <= found

    def test_wrong_rule_id_does_not_silence(self):
        source = "import networkx  # reprolint: disable=RL005 - wrong id\n"
        assert [v.rule_id for v in lint_source(source)] == ["RL001"]

    def test_suppression_in_string_literal_is_ignored(self):
        source = 'x = "# reprolint: disable-file=all"\nimport networkx\n'
        assert [v.rule_id for v in lint_source(source)] == ["RL001"]

    def test_parse_suppressions_grammar(self):
        supp = parse_suppressions(
            "x = 1  # reprolint: disable=RL001, RL003 - justification\n"
            "# reprolint: disable-file=RL005\n"
        )
        assert supp.by_line == {1: {"RL001", "RL003"}}
        assert supp.file_level == {"RL005"}


class TestReporters:
    def test_text_report_format(self):
        violations = lint_paths([FIXTURES / "rl001_bad.py"])
        text = render_text(violations)
        assert "rl001_bad.py:3:1: RL001" in text
        assert "3 violations (RL001 x3)" in text
        assert render_text([]) == "reprolint: clean"

    def test_json_report_round_trips(self):
        violations = lint_paths([FIXTURES / "rl001_bad.py"])
        payload = json.loads(render_json(violations))
        assert payload["count"] == 3
        assert payload["violations"][0]["rule"] == "RL001"
        assert payload["violations"][0]["line"] == 3


class TestCli:
    def test_fixtures_exit_nonzero_with_rule_ids(self, capsys):
        assert lint_main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_clean_path_exits_zero(self, capsys):
        assert lint_main([str(FIXTURES / "rl001_ok.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_select_restricts_rules(self, capsys):
        assert lint_main([str(FIXTURES), "--select", "RL004"]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out and "RL001" not in out

    def test_ignore_drops_rules(self, capsys):
        code = lint_main(
            [str(FIXTURES / "rl001_bad.py"), "--ignore", "RL001"]
        )
        assert code == 0

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            lint_main([str(FIXTURES), "--select", "RL999"])
        assert exc.value.code == 2

    def test_json_format(self, capsys):
        assert lint_main([str(FIXTURES), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] > 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RL001" in out and "RL006" in out

    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(FIXTURES / "rl001_ok.py")]) == 0
        assert repro_main(["lint", str(FIXTURES / "rl001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out


class TestSelfCheck:
    def test_library_is_reprolint_clean(self):
        violations = lint_paths([PACKAGE_DIR])
        assert violations == [], "\n" + render_text(violations)

    def test_default_cli_target_is_the_package(self, capsys):
        assert lint_main([]) == 0
        assert "clean" in capsys.readouterr().out
