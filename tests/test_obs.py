"""Tests for the observability layer (`repro.obs`) and its pipeline hooks."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from .conftest import random_graph
from repro import obs
from repro.bench import (
    COARSEN_STAGES,
    aggregate_spans,
    render_stage_table,
    run_traced,
)
from repro.core import (
    coarsen_influence_graph,
)


@pytest.fixture(autouse=True)
def _no_ambient_instrumentation():
    """Every test starts and ends with instrumentation disabled."""
    assert obs.current_tracer() is None
    assert obs.current_metrics() is None
    yield
    obs.set_tracer(None)
    obs.set_metrics(None)


def traced(fn):
    sink = obs.ListSink()
    tracer = obs.Tracer(sink)
    with obs.use_tracer(tracer):
        result = fn()
    tracer.close()
    return result, sink.records


class TestSpans:
    def test_nesting_parent_depth_and_close_order(self):
        _, records = traced(lambda: self._nested())
        spans = [r for r in records if r["type"] == "span"]
        by_name = {r["name"]: r for r in spans}
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["mid"]["parent"] == by_name["outer"]["id"]
        assert by_name["mid"]["depth"] == 1
        assert by_name["leaf"]["parent"] == by_name["mid"]["id"]
        assert by_name["leaf"]["depth"] == 2
        # children are emitted (closed) before their parents
        order = [r["name"] for r in spans]
        assert order == ["leaf", "mid", "outer"]
        # a parent's duration covers its children
        assert by_name["outer"]["seconds"] >= by_name["mid"]["seconds"]

    @staticmethod
    def _nested():
        with obs.span("outer"):
            with obs.span("mid"):
                with obs.span("leaf", marker=1):
                    pass

    def test_sibling_spans_share_parent(self):
        def body():
            with obs.span("parent"):
                with obs.span("child", i=0):
                    pass
                with obs.span("child", i=1):
                    pass

        _, records = traced(body)
        children = [r for r in records
                    if r["type"] == "span" and r["name"] == "child"]
        parent = next(r for r in records
                      if r["type"] == "span" and r["name"] == "parent")
        assert [c["attrs"]["i"] for c in children] == [0, 1]
        assert all(c["parent"] == parent["id"] for c in children)
        # non-overlapping siblings in start order
        assert children[0]["t_start"] <= children[1]["t_start"]

    def test_error_status_propagates(self):
        def body():
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")

        _, records = traced(body)
        boom = next(r for r in records if r.get("name") == "boom")
        assert boom["status"] == "error"

    def test_noop_mode_emits_nothing_and_allocates_nothing(self):
        # no tracer installed: span() returns the shared null singleton
        a = obs.span("x", big=1)
        b = obs.span("y")
        assert a is b
        with a:
            pass  # reentrant and side-effect free

    def test_rss_delta_recorded_when_enabled(self):
        sink = obs.ListSink()
        tracer = obs.Tracer(sink, rss=True)
        with obs.use_tracer(tracer):
            with obs.span("alloc"):
                _ = np.zeros(1_000_000)
        tracer.close()
        span = next(r for r in sink.records if r.get("name") == "alloc")
        assert "rss_delta_kb" in span and span["rss_delta_kb"] >= 0

    def test_threads_get_independent_stacks(self):
        sink = obs.ListSink()
        tracer = obs.Tracer(sink)
        # keep all workers alive at once so thread idents cannot be reused
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            with tracer.span("thread_root"):
                barrier.wait()

        with obs.use_tracer(tracer):
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        tracer.close()
        roots = [r for r in sink.records if r.get("name") == "thread_root"]
        assert len(roots) == 4
        assert all(r["parent"] is None and r["depth"] == 0 for r in roots)
        assert len({r["thread"] for r in roots}) == 4


class TestJsonlSchema:
    def test_jsonl_round_trip_validates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.trace_to(path):
            with obs.span("a", k=1):
                with obs.span("b"):
                    pass
        records = obs.read_trace(path)  # validates every record
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == obs.TRACE_SCHEMA_VERSION
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["b", "a"]

    def test_validate_rejects_malformed_records(self):
        with pytest.raises(ValueError):
            obs.validate_record({"type": "meta", "schema": 999})
        with pytest.raises(ValueError):
            obs.validate_record({"type": "span", "name": "x"})
        with pytest.raises(ValueError):
            obs.validate_record({"type": "wat"})
        good = {
            "type": "span", "name": "x", "id": 1, "parent": None, "depth": 0,
            "thread": 1, "t_start": 0.0, "seconds": 0.1, "status": "ok",
            "attrs": {},
        }
        obs.validate_record(good)  # no raise
        bad = dict(good, status="maybe")
        with pytest.raises(ValueError):
            obs.validate_record(bad)

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with obs.trace_to(path):
            with obs.span("x"):
                pass
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2  # meta + one span
        for line in lines:
            json.loads(line)


class TestMetrics:
    def test_registry_isolation(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        with obs.use_metrics(a):
            obs.inc("hits", 2)
        with obs.use_metrics(b):
            obs.inc("hits", 5)
        assert a.counter("hits") == 2
        assert b.counter("hits") == 5

    def test_disabled_helpers_are_noops(self):
        obs.inc("ghost", 100)
        obs.set_gauge("ghost", 1.0)
        obs.observe("ghost", 0.5)
        with obs.timed("ghost"):
            pass
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            pass
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "timers": {}}

    def test_counters_gauges_timers(self):
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            obs.inc("c")
            obs.inc("c", 4)
            obs.set_gauge("g", 2.5)
            with obs.timed("t"):
                pass
            obs.observe("t", 0.25)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["timers"]["t"]["count"] == 2
        assert snap["timers"]["t"]["max"] >= 0.25
        assert "c" in registry.render()

    def test_use_metrics_restores_previous(self):
        outer = obs.MetricsRegistry()
        inner = obs.MetricsRegistry()
        with obs.use_metrics(outer):
            with obs.use_metrics(inner):
                obs.inc("x")
            obs.inc("x")
            assert obs.current_metrics() is outer
        assert inner.counter("x") == 1
        assert outer.counter("x") == 1

    def test_default_registry_enable_disable(self):
        registry = obs.enable_metrics()
        try:
            assert obs.current_metrics() is registry
            assert obs.default_registry() is registry
        finally:
            obs.disable_metrics()
        assert obs.current_metrics() is None


class TestPipelineInstrumentation:
    def test_coarsen_spans_cover_all_stages(self):
        g = random_graph(120, 600, seed=3)
        result, records = traced(lambda: coarsen_influence_graph(g, r=4, rng=0))
        for record in records:
            obs.validate_record(record)
        agg = aggregate_spans(records, COARSEN_STAGES)
        assert set(agg) == set(COARSEN_STAGES)
        assert agg["sample"]["count"] == 4
        assert agg["scc"]["count"] == 4
        assert agg["meet"]["count"] == 4
        assert agg["contract"]["count"] == 1
        # stage spans nest under the top-level coarsen span
        top = next(r for r in records if r.get("name") == "coarsen_linear")
        assert top["depth"] == 0

    def test_coarsen_stats_stage_times_sum_to_total(self):
        g = random_graph(400, 2500, seed=5)
        result = coarsen_influence_graph(g, r=8, rng=0)
        stats = result.stats
        assert set(stats.stage_seconds) == set(COARSEN_STAGES)
        assert all(v >= 0 for v in stats.stage_seconds.values())
        total_staged = sum(stats.stage_seconds.values())
        # stages live inside the two timed phases, so their sum is bounded
        # above by the total and accounts for (nearly) all of it
        assert total_staged <= stats.total_seconds + 1e-6
        assert total_staged >= 0.5 * stats.total_seconds
        assert stats.stage_summary().startswith("stages: ")

    def test_parallel_thread_executor_traces_are_valid(self):
        g = random_graph(80, 400, seed=7)
        result, records = traced(
            lambda: coarsen_influence_graph(
                g, r=4, workers=2, rng=0, executor="thread"
            )
        )
        for record in records:
            obs.validate_record(record)
        names = {r["name"] for r in records if r["type"] == "span"}
        assert "coarsen_parallel" in names
        assert "robust_scc_partition" in names  # emitted by worker threads
        assert result.stats.stage_seconds.get("contract", 0) >= 0

    def test_metrics_counters_from_coarsen(self):
        g = random_graph(60, 250, seed=1)
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            coarsen_influence_graph(g, r=3, rng=0)
        assert registry.counter("coarsen.runs") == 1
        assert registry.counter("coarsen.samples") == 3
        assert registry.counter("scc.runs") == 3
        assert registry.counter("sample.live_edge_graphs") == 3
        assert registry.counter("partition.meets") == 3

    def test_disabled_instrumentation_identical_results(self):
        g = random_graph(100, 500, seed=9)
        plain = coarsen_influence_graph(g, r=5, rng=42)
        traced_result, _ = traced(lambda: coarsen_influence_graph(g, r=5, rng=42))
        assert np.array_equal(plain.pi, traced_result.pi)
        assert plain.partition == traced_result.partition


class TestBenchConsumption:
    def test_run_traced_returns_result_and_spans(self):
        g = random_graph(50, 200, seed=2)
        result, records = run_traced(lambda: coarsen_influence_graph(g, r=2, rng=0))
        assert result.coarse.n <= g.n
        assert any(r.get("name") == "coarsen_linear" for r in records)

    def test_stage_table_renders_all_stages(self):
        g = random_graph(50, 200, seed=2)
        _, records = run_traced(lambda: coarsen_influence_graph(g, r=2, rng=0))
        agg = aggregate_spans(records, COARSEN_STAGES)
        table = render_stage_table("stage times", [("r=2", agg)])
        for stage in COARSEN_STAGES:
            assert stage in table
        assert "r=2" in table
        assert "total" in table


class TestCliObservability:
    def _write_graph(self, tmp_path):
        rng = np.random.default_rng(0)
        path = tmp_path / "g.txt"
        with open(path, "w") as handle:
            for _ in range(400):
                u, v = rng.integers(0, 60, 2)
                if u != v:
                    handle.write(f"{u} {v} {rng.uniform(0.1, 0.9):.3f}\n")
        return str(path)

    def test_cli_trace_flag_writes_schema_valid_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        graph = self._write_graph(tmp_path)
        trace = str(tmp_path / "out.jsonl")
        assert main(["coarsen", graph, "-r", "4", "--trace", trace]) == 0
        records = obs.read_trace(trace)  # schema validation built in
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"sample", "scc", "meet", "contract"} <= names
        # nested: stage spans sit below the top-level pipeline span
        depths = {r["name"]: r["depth"] for r in records if r["type"] == "span"}
        assert depths["contract"] > depths["coarsen_linear"]
        assert "trace ->" in capsys.readouterr().out

    def test_cli_metrics_flag_prints_report(self, tmp_path, capsys):
        from repro.cli import main

        graph = self._write_graph(tmp_path)
        assert main(["coarsen", graph, "-r", "2", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "coarsen.runs" in out
        assert "stages: " in out  # per-stage breakdown line

    def test_cli_help_mentions_obs_flags(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["coarsen", "--help"])
        out = capsys.readouterr().out
        assert "--trace" in out
        assert "--metrics" in out
