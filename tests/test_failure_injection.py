"""Failure-injection tests: corrupted inputs, adversarial parameters,
and degenerate graphs must fail loudly (or degrade gracefully), never
silently corrupt results."""

import os

import numpy as np
import pytest

from repro import (
    GraphBuilder,
    InfluenceGraph,
    PairStore,
    TripletStore,
    coarsen_influence_graph,
)
from repro.algorithms import DSSAMaximizer
from repro.estimators import make_estimator
from repro.core import DynamicCoarsener, coarsen
from repro.errors import (
    AlgorithmError,
    BudgetExceededError,
    CoarseningError,
    GraphFormatError,
)
from repro.partition import Partition

from .conftest import build_graph, random_graph


class TestCorruptedStores:
    def test_truncated_payload_detected_on_read(self, tmp_path):
        g = random_graph(10, 30, seed=0)
        store = TripletStore.from_graph(g, tmp_path / "g.trip")
        # chop off the tail of the file (partial record)
        size = os.path.getsize(store.path)
        with open(store.path, "r+b") as handle:
            handle.truncate(size - 7)
        reopened = TripletStore.open(tmp_path / "g.trip")
        with pytest.raises(GraphFormatError, match="truncated edge record"):
            list(reopened.iter_chunks())

    def test_header_size_mismatch_is_visible(self, tmp_path):
        store = PairStore.create(tmp_path / "p.pairs", n=4)
        store.append(np.array([0, 1]), np.array([1, 2]))
        # forge the header to claim more edges than stored
        other = PairStore(tmp_path / "p.pairs", n=4, m=2)
        tails, heads = other.read_all()
        assert tails.size == 2  # reads what exists, not the forged count


class TestDegenerateGraphs:
    def test_coarsen_empty_graph(self):
        g = InfluenceGraph.empty(5)
        res = coarsen_influence_graph(g, r=4, rng=0)
        assert res.coarse.n == 5
        assert res.coarse.m == 0

    def test_coarsen_single_vertex(self):
        g = InfluenceGraph.empty(1)
        res = coarsen_influence_graph(g, r=2, rng=0)
        assert res.coarse.n == 1

    def test_all_probability_one_graph_collapses_sccs(self):
        g = build_graph(4, [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)])
        res = coarsen_influence_graph(g, r=16, rng=0)
        assert res.coarse.n == 2
        assert res.coarse.m == 0

    def test_near_zero_probabilities_keep_everything(self):
        edges = [(i, (i + 1) % 8, 1e-9) for i in range(8)]
        g = build_graph(8, edges)
        res = coarsen_influence_graph(g, r=4, rng=0)
        assert res.coarse.n == 8
        assert res.coarse.m == 8

    def test_dense_complete_digraph(self):
        n = 12
        edges = [(i, j, 0.99) for i in range(n) for j in range(n) if i != j]
        g = build_graph(n, edges)
        res = coarsen_influence_graph(g, r=8, rng=0)
        assert res.coarse.n == 1
        assert res.coarse.weights.tolist() == [n]

    def test_estimator_on_edgeless_graph(self):
        g = InfluenceGraph.empty(3)
        est = make_estimator("mc", n_samples=100, rng=0)
        assert est.estimate(g, np.array([1])) == 1.0


class TestAdversarialParameters:
    def test_dssa_budget_failure_is_clean(self, two_cliques_graph):
        dssa = DSSAMaximizer(eps=0.05, delta=0.001, rng=0,
                             memory_budget_elements=10)
        with pytest.raises(BudgetExceededError):
            dssa.select(two_cliques_graph, 2)
        # the instance is reusable after the failure
        dssa.memory_budget_elements = None
        result = dssa.select(two_cliques_graph, 2)
        assert result.seeds.size == 2

    def test_coarsen_with_foreign_partition_fails(self, paper_graph):
        foreign = Partition.trivial(4)  # wrong universe size
        with pytest.raises(CoarseningError):
            coarsen(paper_graph, foreign)

    def test_builder_rejects_nan_probability(self):
        b = GraphBuilder(n=2)
        b.add_edge(0, 1, float("nan"))
        with pytest.raises(GraphFormatError):
            b.build()

    def test_negative_probability_rejected(self):
        b = GraphBuilder(n=2)
        b.add_edge(0, 1, -0.5)
        with pytest.raises(GraphFormatError):
            b.build()

    def test_sublinear_with_zero_chunk_does_not_hang(self, tmp_path):
        g = random_graph(8, 20, seed=0)
        src = TripletStore.from_graph(g, tmp_path / "g.trip")
        # chunk_edges=1 is the pathological-but-legal extreme
        res = coarsen_influence_graph(src, space="sublinear", out_path=tmp_path / "h.trip", r=2, rng=0, chunk_edges=1
        )
        assert res.load().coarse.n >= 1


class TestDynamicEdgeCases:
    def test_empty_graph_dynamic(self):
        dyn = DynamicCoarsener(InfluenceGraph.empty(3), r=4, rng=0)
        dyn.insert_edge(0, 1, 0.5)
        dyn.insert_edge(1, 0, 0.9)
        assert dyn.current_graph().m == 2
        snap = dyn.snapshot()
        ref = dyn.reference_coarsening()
        assert snap.coarse == ref.coarse

    def test_delete_to_empty(self):
        g = build_graph(3, [(0, 1, 0.5)])
        dyn = DynamicCoarsener(g, r=4, rng=0)
        dyn.delete_edge(0, 1)
        assert dyn.current_graph().m == 0
        assert dyn.snapshot().coarse.m == 0

    def test_r_zero_dynamic(self):
        g = build_graph(3, [(0, 1, 0.5)])
        dyn = DynamicCoarsener(g, r=0, rng=0)
        # with no samples the partition is trivially {V}
        assert dyn.snapshot().coarse.n == 1
        dyn.insert_edge(1, 2, 0.5)
        assert dyn.snapshot().coarse.n == 1
