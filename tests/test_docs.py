"""Documentation consistency checks.

These keep the five deliverable documents honest: every benchmark file must
be indexed in DESIGN.md/benchmarks/README.md, the README's quickstart
imports must exist, and the experiment record must cover every table and
figure of the paper's evaluation.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestBenchmarkIndexes:
    def _bench_files(self):
        return sorted(
            p.name for p in (ROOT / "benchmarks").glob("bench_*.py")
        )

    def test_every_bench_listed_in_benchmarks_readme(self):
        readme = read("benchmarks/README.md")
        for name in self._bench_files():
            assert name in readme, f"{name} missing from benchmarks/README.md"

    def test_every_paper_table_and_figure_has_a_bench(self):
        files = " ".join(self._bench_files())
        for table in (2, 3, 4, 5, 6, 7, 8, 9, 10, 11):
            assert f"table{table}" in files, f"Table {table} uncovered"
        for figure in (4, 5, 6, 7, 8, 9, 10):
            assert f"fig{figure}" in files, f"Figure {figure} uncovered"

    def test_every_bench_in_design_experiment_index(self):
        design = read("DESIGN.md")
        for name in self._bench_files():
            assert name in design, f"{name} missing from DESIGN.md index"


class TestExperimentsRecord:
    def test_covers_all_tables_and_figures(self):
        text = read("EXPERIMENTS.md")
        for table in (2, 3, 4, 5, 6, 7):
            assert f"## Table {table}" in text
        for figure in (4, 5, 6, 7, 8, 9, 10):
            assert f"## Figure {figure}" in text
        assert "Tables 8–11" in text or "## Table 8" in text

    def test_mentions_paper_and_measured(self):
        text = read("EXPERIMENTS.md")
        assert text.count("**Paper") >= 8
        assert text.count("**Measured") >= 8


class TestReadme:
    def test_quickstart_imports_resolve(self):
        import repro

        readme = read("README.md")
        block = re.search(r"```python\n(.*?)```", readme, re.S).group(1)
        for match in re.finditer(r"from repro import (.+)", block):
            for name in match.group(1).split(","):
                assert hasattr(repro, name.strip()), name

    def test_examples_table_matches_directory(self):
        readme = read("README.md")
        for script in sorted((ROOT / "examples").glob("*.py")):
            assert script.name in readme, f"{script.name} not in README"


class TestTheoryMap:
    def test_references_existing_modules(self):
        import importlib

        theory = read("docs/THEORY.md")
        for match in set(re.findall(r"`(repro\.[a-z_.]+)`", theory)):
            module_path = match
            # strip trailing attribute if it is not importable as a module
            try:
                importlib.import_module(module_path)
                continue
            except ImportError:
                pass
            parent, _, attr = module_path.rpartition(".")
            mod = importlib.import_module(parent)
            assert hasattr(mod, attr), f"THEORY.md references missing {match}"
