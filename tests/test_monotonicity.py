"""Monotonicity regressions for Theorems 4.14 / 4.15.

Theorem 4.14: adding a sample can only *refine* the r-robust partition —
``P_{r+1}`` is a refinement of ``P_r`` — so along one shared sample
sequence the partition chain is monotone and the coarse vertex count never
decreases in ``r``.  Theorem 4.15 (with Theorem 6.1) bounds the estimation
error: influence computed on the coarse graph never falls below the true
influence on ``G`` (coarsening merges vertices that activate together, so
it can only over-count).  These are exact structural guarantees, so they
make sharp regression tests: a violation is a bug, not noise — except for
the influence comparison, which goes through two Monte Carlo estimators
and therefore gets a CI-width tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators import make_estimator
from repro.core import coarsen_influence_graph, estimate_on_coarse
from repro.core.robust_scc import robust_scc_refinement_sequence

from .conftest import random_graph


class TestPartitionChainMonotone:
    @pytest.mark.parametrize("seed", (0, 3, 19))
    def test_each_step_refines_the_previous(self, seed):
        graph = random_graph(n=100, m=500, seed=seed)
        chain = robust_scc_refinement_sequence(graph, r=10, rng=seed)
        assert len(chain) == 10
        for earlier, later in zip(chain, chain[1:]):
            assert later.is_refinement_of(earlier)

    @pytest.mark.parametrize("seed", (0, 3, 19))
    def test_coarse_vertex_count_never_decreases(self, seed):
        graph = random_graph(n=100, m=500, seed=seed)
        chain = robust_scc_refinement_sequence(graph, r=10, rng=seed)
        counts = [p.n_blocks for p in chain]
        assert counts == sorted(counts)
        # and every count is a valid coarse vertex count
        assert all(1 <= c <= graph.n for c in counts)

    def test_chain_matches_direct_construction(self):
        """P_r from the chain equals the partition Algorithm 1 coarsens by."""
        graph = random_graph(n=80, m=400, seed=7)
        r = 6
        chain = robust_scc_refinement_sequence(graph, r=r, rng=7)
        direct = coarsen_influence_graph(graph, r=r, rng=7)
        assert chain[-1] == direct.partition

    def test_dense_probabilities_stay_coarse(self):
        """With p=1 every sample keeps all edges: the chain never refines
        past the exact SCC partition, so all r values give one partition."""
        graph = random_graph(n=60, m=400, seed=2, p_low=1.0, p_high=1.0)
        chain = robust_scc_refinement_sequence(graph, r=5, rng=2)
        for partition in chain[1:]:
            assert partition == chain[0]


class TestInfluenceUpperBound:
    """Theorem 4.14/6.1: Inf_H(pi(S)) >= Inf_G(S) (up to MC noise)."""

    @pytest.mark.parametrize("r", (1, 4, 16))
    def test_coarse_estimate_upper_bounds_ground_truth(self, r):
        graph = random_graph(n=120, m=700, seed=13, p_low=0.1, p_high=0.9)
        result = coarsen_influence_graph(graph, r=r, rng=13)
        seeds = np.asarray([0, 17, 53], dtype=np.int64)

        n_sims = 4000
        coarse_est = estimate_on_coarse(
            result, seeds, make_estimator("mc", n_samples=n_sims, rng=99)
        )
        ground = make_estimator("mc", n_samples=n_sims, rng=99).estimate(
            graph, seeds
        )

        # Both estimates are means of n_sims bounded-by-n samples; a
        # generous CI tolerance (~4 sigma of a conservative variance
        # bound) keeps this deterministic-in-practice without masking a
        # genuine violation, which would be O(n) not O(sigma).
        sigma_bound = graph.n / (2.0 * np.sqrt(n_sims))
        tolerance = 4.0 * sigma_bound * 2.0  # two independent estimators
        assert coarse_est >= ground - tolerance

    def test_singleton_partition_estimates_exactly_match(self):
        """r large enough to shatter the partition => H is G (plus weights),
        so the two estimators see the same process."""
        graph = random_graph(n=50, m=150, seed=4, p_low=0.05, p_high=0.3)
        result = coarsen_influence_graph(graph, r=64, rng=4)
        if result.coarse.n != graph.n:
            pytest.skip("partition did not shatter at this seed")
        seeds = np.asarray([1, 2, 3], dtype=np.int64)
        coarse_est = estimate_on_coarse(
            result, seeds, make_estimator("mc", n_samples=2000, rng=7)
        )
        ground = make_estimator("mc", n_samples=2000, rng=7).estimate(
            graph, seeds
        )
        assert coarse_est == pytest.approx(ground, rel=0.15)
