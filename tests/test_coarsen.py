"""Tests for the coarsening contraction (Definition 4.1)."""

import numpy as np
import pytest

from repro.core import coarsen, check_partition_strongly_connected
from repro.errors import CoarseningError
from repro.graph import InfluenceGraph
from repro.partition import Partition

from .conftest import build_graph, random_graph


class TestPaperExample:
    """Example 4.2 / Figures 1-2, verbatim."""

    def test_structure(self, paper_graph, paper_partition_blocks):
        partition = Partition.from_blocks(paper_partition_blocks, 9)
        coarse, pi = coarsen(paper_graph, partition, validate=True)
        assert coarse.n == 5
        assert coarse.weights.tolist() == [3, 1, 2, 1, 2]
        assert pi.tolist() == [0, 0, 0, 1, 2, 2, 3, 4, 4]

    def test_edge_probabilities(self, paper_graph, paper_partition_blocks):
        partition = Partition.from_blocks(paper_partition_blocks, 9)
        coarse, _ = coarsen(paper_graph, partition)
        q = {(u, v): p for u, v, p in zip(*coarse.edge_arrays())}
        # q(c1, c2) = 1 - (1 - 0.3)(1 - 0.2) = 0.44 (the paper's example)
        assert q[(0, 1)] == pytest.approx(0.44)
        assert q[(1, 2)] == pytest.approx(0.4)   # single edge v4 -> v5
        assert q[(2, 3)] == pytest.approx(0.3)   # v6 -> v7
        assert q[(3, 4)] == pytest.approx(0.2)   # v7 -> v8
        assert len(q) == 4  # no intra-component edges survive

    def test_no_self_loops_in_coarse_graph(self, paper_graph, paper_partition_blocks):
        partition = Partition.from_blocks(paper_partition_blocks, 9)
        coarse, pi = coarsen(paper_graph, partition)
        tails, heads, _ = coarse.edge_arrays()
        assert (tails != heads).all()


class TestInvariants:
    def test_singleton_partition_is_identity(self, paper_graph):
        coarse, pi = coarsen(paper_graph, Partition.singletons(9))
        assert coarse.n == paper_graph.n
        assert coarse.m == paper_graph.m
        assert np.allclose(coarse.probs, paper_graph.probs)
        assert pi.tolist() == list(range(9))

    def test_total_weight_conserved(self):
        for seed in range(5):
            g = random_graph(25, 70, seed=seed)
            # coarsen by each live-edge sample's SCC partition
            from repro.core import robust_scc_partition
            partition = robust_scc_partition(g, 2, rng=seed)
            coarse, _ = coarsen(g, partition)
            assert coarse.total_weight == g.n

    def test_weighted_input_composes(self, two_cliques_graph):
        partition = Partition.from_blocks([[0, 1, 2, 3], [4], [5], [6], [7]], 8)
        coarse1, pi1 = coarsen(two_cliques_graph, partition, validate=True)
        partition2 = Partition.from_blocks(
            [[0], [1, 2, 3, 4]], coarse1.n
        )
        coarse2, pi2 = coarsen(coarse1, partition2, validate=True)
        assert coarse2.total_weight == 8
        assert coarse2.weights.tolist() == [4, 4]

    def test_coarse_q_matches_noisy_or_brute_force(self):
        g = random_graph(12, 40, seed=3)
        labels = np.arange(12) // 3  # blocks of 3 (not SC; validate off)
        partition = Partition(labels)
        coarse, pi = coarsen(g, partition)
        tails, heads, probs = g.edge_arrays()
        expected: dict[tuple[int, int], float] = {}
        for u, v, p in zip(tails, heads, probs):
            cu, cv = int(pi[u]), int(pi[v])
            if cu != cv:
                expected[(cu, cv)] = expected.get((cu, cv), 1.0) * (1.0 - p)
        got = {(int(u), int(v)): p for u, v, p in zip(*coarse.edge_arrays())}
        assert set(got) == set(expected)
        for key in got:
            assert got[key] == pytest.approx(1.0 - expected[key])

    def test_pi_is_partition_labels(self, paper_graph, paper_partition_blocks):
        partition = Partition.from_blocks(paper_partition_blocks, 9)
        _, pi = coarsen(paper_graph, partition)
        assert np.array_equal(pi, partition.labels)


class TestValidation:
    def test_rejects_wrong_partition_size(self, paper_graph):
        with pytest.raises(CoarseningError):
            coarsen(paper_graph, Partition.trivial(5))

    def test_validate_rejects_non_sc_block(self, paper_graph):
        # {3, 6} are not even adjacent, let alone strongly connected.
        partition = Partition.from_blocks(
            [[0], [1], [2], [3, 6], [4], [5], [7], [8]], 9
        )
        with pytest.raises(CoarseningError, match="strongly connected"):
            coarsen(paper_graph, partition, validate=True)

    def test_validate_accepts_sc_blocks(self, paper_graph, paper_partition_blocks):
        partition = Partition.from_blocks(paper_partition_blocks, 9)
        check_partition_strongly_connected(paper_graph, partition)

    def test_validate_rejects_one_directional_pair(self):
        g = build_graph(2, [(0, 1, 0.5)])
        with pytest.raises(CoarseningError):
            check_partition_strongly_connected(g, Partition.trivial(2))
