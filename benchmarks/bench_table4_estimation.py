"""Table 4 — the influence-estimation framework (Algorithm 3 with MC).

Paper: for 10,000 sampled vertices per dataset, total estimation time of
plain Monte-Carlo versus the framework (MC on the coarsened graph), plus
MARE and Spearman RCC against a 100,000-simulation ground truth.  Headline
shapes: the time ratio roughly tracks the edge-reduction ratio (simulation
cost is edge-traversal-bound), MARE stays within ~10%, RCC stays near 1.

Scaled here to fewer vertices and simulations (MC error only affects both
sides symmetrically); the large tier reports timing only, mirroring the
paper's "—" accuracy cells for its largest datasets.
"""

from __future__ import annotations

import time

import numpy as np

from repro.estimators import make_estimator
from repro.analysis import (
    mean_absolute_relative_error,
    spearman_rank_correlation,
)
from repro.bench import format_seconds, render_table, save_json
from repro.core import coarsen_influence_graph, estimate_on_coarse
from repro.datasets import DATASETS, load_dataset
from repro.rng import ensure_rng

from conftest import dataset_names, results_path, run_once

R = 16
SETTINGS = ("exp", "tri")
N_TIMING_VERTICES = 30
N_TIMING_SIMULATIONS = 300
N_ACCURACY_VERTICES = 12
ACCURACY_BUDGET_SECONDS = 20.0  # per (dataset, setting), per method
MIN_ACCURACY_SIMS = 1_000
MAX_ACCURACY_SIMS = 25_000


def _adaptive_sims(graph, vertices) -> int:
    """Pick an accuracy simulation count that fits the time budget.

    Heavy-tailed spreads need many simulations for a stable mean (the paper
    uses 100,000); a 200-simulation probe estimates the per-simulation cost
    so cheap datasets get deep sampling and expensive ones stay feasible.
    """
    probe = make_estimator("mc", n_samples=200, rng=0)
    t0 = time.perf_counter()
    for v in vertices[:3]:
        probe.estimate(graph, np.array([v]))
    per_sim = (time.perf_counter() - t0) / 600
    budget_per_vertex = ACCURACY_BUDGET_SECONDS / len(vertices)
    sims = int(budget_per_vertex / max(per_sim, 1e-7))
    return max(MIN_ACCURACY_SIMS, min(MAX_ACCURACY_SIMS, sims))


def evaluate(name: str, setting: str) -> dict:
    graph = load_dataset(name, setting, seed=0)
    result = coarsen_influence_graph(graph, r=R, rng=0)
    rng = ensure_rng(7)
    vertices = rng.choice(
        graph.n, size=min(N_TIMING_VERTICES, graph.n), replace=False
    )

    # --- timing phase (fixed simulation count on both sides) ---
    plain = make_estimator("mc", n_samples=N_TIMING_SIMULATIONS, rng=1)
    t0 = time.perf_counter()
    for v in vertices:
        plain.estimate(graph, np.array([v]))
    plain_seconds = time.perf_counter() - t0

    framework = make_estimator("mc", n_samples=N_TIMING_SIMULATIONS, rng=2)
    t0 = time.perf_counter()
    for v in vertices:
        estimate_on_coarse(result, np.array([v]), framework)
    framework_seconds = time.perf_counter() - t0

    row = {
        "plain_seconds": plain_seconds,
        "framework_seconds": framework_seconds,
        "time_ratio_pct": 100 * framework_seconds / plain_seconds,
        "edge_ratio_pct": 100 * result.stats.edge_reduction_ratio,
        "plain_examined_edges": plain.stats.examined_edges,
        "framework_examined_edges": framework.stats.examined_edges,
    }

    # --- accuracy phase (deep sampling, small tiers only, as in the paper) ---
    if DATASETS[name].tier != "large":
        acc_vertices = vertices[:N_ACCURACY_VERTICES]
        sims = _adaptive_sims(graph, acc_vertices)
        gt_est = make_estimator("mc", n_samples=sims, rng=3)
        fw_est = make_estimator("mc", n_samples=sims, rng=4)
        ground_truth = np.array(
            [gt_est.estimate(graph, np.array([v])) for v in acc_vertices]
        )
        estimates = np.array(
            [estimate_on_coarse(result, np.array([v]), fw_est)
             for v in acc_vertices]
        )
        row["accuracy_sims"] = sims
        row["mare"] = mean_absolute_relative_error(ground_truth, estimates)
        row["rcc"] = spearman_rank_correlation(ground_truth, estimates)
    return row


def generate(settings=SETTINGS, title="Table 4", out_name="table4") -> dict:
    rows = []
    raw: dict = {}
    for name in dataset_names():
        raw[name] = {}
        cells = [name]
        for setting in settings:
            r = evaluate(name, setting)
            raw[name][setting] = r
            cells += [
                format_seconds(r["plain_seconds"]),
                format_seconds(r["framework_seconds"]),
                f"{r['time_ratio_pct']:.1f}%",
                f"{r['mare']:.4f}" if "mare" in r else "-",
                f"{r['rcc']:.4f}" if "rcc" in r else "-",
            ]
        rows.append(cells)
    header = ["dataset"]
    for setting in settings:
        tag = setting.upper()
        header += [f"{tag} MC", f"{tag} Alg3(MC)", "ratio", "MARE", "RCC"]
    table = render_table(
        f"{title}: influence estimation, plain MC vs Alg.3(MC) "
        f"({N_TIMING_VERTICES} vertices x {N_TIMING_SIMULATIONS} timing sims, "
        f"adaptive accuracy sims, r={R})",
        header, rows,
    )
    print(table)
    save_json(raw, results_path(f"{out_name}.json"))
    with open(results_path(f"{out_name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return raw


def bench_table4_estimation(benchmark):
    raw = run_once(benchmark, generate)
    speedups = []
    for name, per_setting in raw.items():
        for setting, row in per_setting.items():
            # Shape: edge-traversal work shrinks roughly with edge count.
            assert row["framework_examined_edges"] < row["plain_examined_edges"]
            if "mare" in row:
                assert row["mare"] < 0.25, (name, setting)
                assert row["rcc"] > 0.85, (name, setting)
            speedups.append(row["time_ratio_pct"])
    # The framework wins on aggregate.
    assert float(np.median(speedups)) < 100.0


if __name__ == "__main__":
    generate()
