"""Figure 5 — memory usage of both implementations versus r (EXP).

Paper shape: memory of the linear-space implementation is *flat* in r
(samples are drawn one at a time); the sublinear implementation is also
flat and sits well below it on large graphs.
"""

from __future__ import annotations

import os
import tempfile

from repro.bench import measure, render_series, save_json
from repro.core import coarsen_influence_graph
from repro.datasets import load_dataset
from repro.storage import TripletStore

from conftest import results_path, run_once

DATASET = "twitter-2010"
R_VALUES = (1, 2, 4, 8, 16)


def generate() -> dict:
    graph = load_dataset(DATASET, "exp", seed=0)
    graph.tails()  # warm the CSR cache so it is not charged to either side
    linear_mb = []
    sublinear_mb = []
    for r in R_VALUES:
        run = measure(lambda: coarsen_influence_graph(graph, r=r, rng=0))
        linear_mb.append(run.peak_mb)
        with tempfile.TemporaryDirectory() as workdir:
            src = TripletStore.from_graph(graph, os.path.join(workdir, "g.trip"))
            run = measure(
                lambda: coarsen_influence_graph(src, space="sublinear", out_path=os.path.join(workdir, "h.trip"), r=r, rng=0,
                    work_dir=workdir,
                )
            )
            sublinear_mb.append(run.peak_mb)
    raw = {
        "dataset": DATASET,
        "r": list(R_VALUES),
        "linear_peak_mb": linear_mb,
        "sublinear_peak_mb": sublinear_mb,
    }
    print(render_series(
        f"Figure 5: peak memory vs r on {DATASET} (EXP)",
        "r", list(R_VALUES),
        {
            "Alg.1 (linear space)": [f"{m:.1f} MB" for m in linear_mb],
            "Alg.2 (sublinear space)": [f"{m:.1f} MB" for m in sublinear_mb],
        },
    ))
    save_json(raw, results_path("fig5.json"))
    return raw


def bench_fig5_memory_vs_r(benchmark):
    raw = run_once(benchmark, generate)
    lin = raw["linear_peak_mb"]
    sub = raw["sublinear_peak_mb"]
    # Shape: memory is flat in r for both implementations...
    assert max(lin) <= 1.5 * min(lin)
    assert max(sub) <= 1.5 * min(sub)
    # ...and the sublinear implementation stays below the linear one on this
    # large graph.
    assert max(sub) < min(lin)


if __name__ == "__main__":
    generate()
