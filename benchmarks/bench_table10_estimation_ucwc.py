"""Table 10 — Table 4 (estimation framework) under the UC and WC settings.

Paper shapes: UC mirrors EXP (framework cuts the time to the edge ratio,
tiny MARE, RCC ~ 1); under WC the coarsened graph is nearly the input, so
the time ratio hovers around 100% — but WC estimation is extremely cheap in
absolute terms, so nothing is lost.
"""

from __future__ import annotations

import numpy as np

from bench_table4_estimation import generate as _generate

from conftest import run_once


def generate() -> dict:
    return _generate(settings=("uc", "wc"), title="Table 10",
                     out_name="table10")


def bench_table10_estimation_ucwc(benchmark):
    raw = run_once(benchmark, generate)
    uc_ratios, wc_ratios = [], []
    for name, per_setting in raw.items():
        uc_ratios.append(per_setting["uc"]["time_ratio_pct"])
        wc_ratios.append(per_setting["wc"]["time_ratio_pct"])
        for setting in ("uc", "wc"):
            row = per_setting[setting]
            if "mare" in row:
                assert row["mare"] < 0.25, (name, setting)
    # Shape: UC benefits clearly; WC hovers near parity (no reduction).
    assert float(np.median(uc_ratios)) < 90.0
    assert float(np.median(wc_ratios)) > 60.0


if __name__ == "__main__":
    generate()
