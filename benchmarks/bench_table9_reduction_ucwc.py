"""Table 9 — Table 3 (graph-size reduction) under the UC and WC settings.

Paper shapes: UC reduces about as much as EXP; WC reduces almost nothing —
weighted-cascade probabilities (1/indegree) make cycles so unlikely that
r-robust SCCs are essentially all singletons.  The paper notes this is
acceptable because WC influence analysis is cheap anyway (Tables 10, 11).
"""

from __future__ import annotations

from bench_table3_reduction import generate as _generate

from conftest import run_once

# Paper's Table 9 ratios (|W|/|V| %, |F|/|E| %) for side-by-side output.
PAPER_UCWC = {
    "ca-hepph": {},
    "soc-slashdot": {"uc": (95.4, 36.4), "wc": (100.0, 100.0)},
    "web-notredame": {},
    "wiki-talk": {"uc": (99.8, 61.8), "wc": (100.0, 100.0)},
    "com-youtube": {},
    "higgs-twitter": {"uc": (89.6, 29.4), "wc": (99.3, 99.9)},
    "soc-pokec": {},
    "soc-livejournal": {"uc": (93.1, 43.2), "wc": (99.8, 100.0)},
    "com-orkut": {},
    "twitter-2010": {"uc": (93.5, 24.5), "wc": (99.9, 100.0)},
    "com-friendster": {"uc": (71.7, 4.9), "wc": (100.0, 100.0)},
    "uk-2007-05": {"uc": (97.4, 42.6), "wc": (100.0, 100.0)},
    "ameblo": {"uc": (99.4, 79.4), "wc": (98.9, 98.9)},
}


def generate() -> dict:
    return _generate(settings=("uc", "wc"), title="Table 9",
                     out_name="table9", paper=PAPER_UCWC)


def bench_table9_reduction_ucwc(benchmark):
    raw = run_once(benchmark, generate)
    for name, per_setting in raw.items():
        uc, wc = per_setting["uc"], per_setting["wc"]
        # Shape: WC coarsening is far weaker than UC (near-identity).
        assert wc["F_over_E"] >= uc["F_over_E"] - 1e-9, name
        assert wc["F_over_E"] > 90.0, name


if __name__ == "__main__":
    generate()
