"""Shared configuration for the benchmark suite.

Every ``bench_*.py`` file regenerates one of the paper's tables or figures:
it prints the same rows/series the paper reports and saves the raw numbers
under ``benchmarks/results/``.  Each file exposes exactly one
pytest-benchmark entry point (``bench_*`` test using the ``benchmark``
fixture with a single round), so::

    pytest benchmarks/ --benchmark-only

regenerates every artefact and reports the wall time of each.

Dataset scope can be narrowed for quick runs with the environment variable
``REPRO_BENCH_TIER`` (``small`` | ``medium`` | ``large``, default
``large`` = everything).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import list_datasets

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def dataset_names(max_tier: str | None = None) -> list[str]:
    """Datasets included in this bench run (env-var clamped)."""
    env_tier = os.environ.get("REPRO_BENCH_TIER", "large")
    tiers = ("small", "medium", "large")
    if max_tier is None:
        max_tier = env_tier
    else:
        max_tier = tiers[min(tiers.index(max_tier), tiers.index(env_tier))]
    return list_datasets(max_tier=max_tier)


def results_path(name: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return os.path.join(RESULTS_DIR, name)


def run_once(benchmark, fn):
    """Run a full table/figure generator exactly once under the benchmark
    fixture (these are end-to-end experiment drivers, not microbenchmarks)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
