"""Ablation — hash-table meet (Algorithm 5) vs vectorised numpy meet.

DESIGN.md calls out the choice of meet implementation: the paper's
Algorithm 5 is a single O(n) scan with a hash table, which is optimal in C++
but interpreter-bound in Python; the library defaults to a packed-key
``numpy.unique`` (O(n log n) but vectorised).  This bench quantifies the gap
that justifies the default.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import render_table, save_json
from repro.partition import meet_labels, meet_labels_hash
from repro.rng import ensure_rng

from conftest import results_path, run_once

SIZES = (10_000, 100_000, 1_000_000)
BLOCKS = 50


def generate() -> dict:
    rng = ensure_rng(0)
    rows = []
    raw: dict = {}
    for n in SIZES:
        a = rng.integers(0, BLOCKS, size=n).astype(np.int64)
        b = rng.integers(0, BLOCKS, size=n).astype(np.int64)
        t0 = time.perf_counter()
        numpy_out = meet_labels(a, b)
        numpy_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        hash_out = meet_labels_hash(a, b)
        hash_s = time.perf_counter() - t0
        assert np.array_equal(numpy_out, hash_out)
        rows.append([f"{n:,}", f"{numpy_s * 1e3:.1f} ms",
                     f"{hash_s * 1e3:.1f} ms", f"{hash_s / numpy_s:.1f}x"])
        raw[n] = {"numpy_seconds": numpy_s, "hash_seconds": hash_s}
    table = render_table(
        "Ablation: meet implementations (identical outputs verified)",
        ["n", "numpy meet", "hash meet (Alg.5)", "hash/numpy"],
        rows,
    )
    print(table)
    save_json(raw, results_path("ablation_meet.json"))
    return raw


def bench_ablation_meet(benchmark):
    raw = run_once(benchmark, generate)
    # On CPython, the vectorised meet must win at scale.
    big = raw[max(raw)]
    assert big["numpy_seconds"] < big["hash_seconds"]


if __name__ == "__main__":
    generate()
