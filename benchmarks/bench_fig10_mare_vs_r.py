"""Figure 10 — estimation accuracy (MARE) versus r (EXP).

Paper shape: MARE drops steeply as r grows and plateaus around r = 16 —
the justification for the default r = 16 as the accuracy/size sweet spot.
"""

from __future__ import annotations

import numpy as np

from repro.estimators import make_estimator
from repro.analysis import mean_absolute_relative_error
from repro.bench import ascii_plot, render_series, save_json
from repro.core import coarsen, estimate_on_coarse, robust_scc_refinement_sequence
from repro.core.result import CoarsenResult, CoarsenStats
from repro.datasets import load_dataset
from repro.rng import ensure_rng

from conftest import results_path, run_once

DATASETS = ("ca-hepph", "soc-slashdot")
R_POINTS = (1, 2, 4, 8, 16, 32)
N_VERTICES = 12
N_SIMULATIONS = 6_000


def generate() -> dict:
    raw: dict = {"r": list(R_POINTS), "datasets": {}}
    series = {}
    for name in DATASETS:
        graph = load_dataset(name, "exp", seed=0)
        rng = ensure_rng(13)
        vertices = rng.choice(graph.n, size=N_VERTICES, replace=False)
        gt_est = make_estimator("mc", n_samples=N_SIMULATIONS, rng=1)
        ground_truth = np.array(
            [gt_est.estimate(graph, np.array([v])) for v in vertices]
        )
        chain = robust_scc_refinement_sequence(graph, max(R_POINTS), rng=0)
        mares = []
        for r in R_POINTS:
            coarse, pi = coarsen(graph, chain[r - 1])
            result = CoarsenResult(
                coarse=coarse, pi=pi, partition=chain[r - 1],
                stats=CoarsenStats(r=r),
            )
            fw = make_estimator("mc", n_samples=N_SIMULATIONS, rng=2)
            estimates = np.array(
                [estimate_on_coarse(result, np.array([v]), fw)
                 for v in vertices]
            )
            mares.append(mean_absolute_relative_error(ground_truth, estimates))
        raw["datasets"][name] = mares
        series[name] = [f"{m:.4f}" for m in mares]
    print(render_series(
        "Figure 10: MARE vs r (EXP, shared sample chain)",
        "r", list(R_POINTS), series,
    ))
    print()
    print(ascii_plot(
        list(R_POINTS), raw["datasets"], title="MARE vs r", log_x=True,
    ))
    save_json(raw, results_path("fig10.json"))
    return raw


def bench_fig10_mare_vs_r(benchmark):
    raw = run_once(benchmark, generate)
    for name, mares in raw["datasets"].items():
        # Shape: accuracy at the r=16 plateau beats r=1 decisively, and the
        # r=16 -> 32 improvement is marginal (the paper's sweet-spot story).
        assert mares[4] < mares[0], name
        assert abs(mares[5] - mares[4]) < max(0.05, 0.5 * mares[0]), name


if __name__ == "__main__":
    generate()
