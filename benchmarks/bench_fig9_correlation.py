"""Figure 9 — influence correlation, ground truth vs framework estimate.

Paper: scatter of Inf_gt(v) against Inf_out(v) on soc-Slashdot0922 (EXP),
for r = 1 and r = 16.  Shape: r = 1 is heavily biased upward (a fragile
1-robust SCC got merged); r = 16 hugs the diagonal.

The output is the scatter data (one row per vertex) plus summary bias
statistics.
"""

from __future__ import annotations

import numpy as np

from repro.estimators import make_estimator
from repro.bench import render_table, save_json
from repro.core import coarsen_influence_graph, estimate_on_coarse
from repro.datasets import load_dataset
from repro.rng import ensure_rng

from conftest import results_path, run_once

DATASET = "soc-slashdot"
N_VERTICES = 25
N_SIMULATIONS = 6_000


def generate() -> dict:
    graph = load_dataset(DATASET, "exp", seed=0)
    rng = ensure_rng(11)
    vertices = rng.choice(graph.n, size=N_VERTICES, replace=False)
    gt_est = make_estimator("mc", n_samples=N_SIMULATIONS, rng=1)
    ground_truth = np.array(
        [gt_est.estimate(graph, np.array([v])) for v in vertices]
    )
    raw: dict = {"dataset": DATASET, "vertices": vertices.tolist(),
                 "ground_truth": ground_truth.tolist(), "r": {}}
    rows = []
    for r in (1, 16):
        result = coarsen_influence_graph(graph, r=r, rng=0)
        fw = make_estimator("mc", n_samples=N_SIMULATIONS, rng=2)
        estimates = np.array(
            [estimate_on_coarse(result, np.array([v]), fw) for v in vertices]
        )
        bias = float(np.mean((estimates - ground_truth) / ground_truth))
        raw["r"][r] = {"estimates": estimates.tolist(), "mean_bias": bias}
        rows.append([f"r={r}", f"{bias:+.1%}",
                     f"{100 * result.stats.edge_reduction_ratio:.1f}%"])
    scatter_rows = [
        [int(v), f"{g:.1f}", f"{e1:.1f}", f"{e16:.1f}"]
        for v, g, e1, e16 in zip(
            vertices, ground_truth, raw["r"][1]["estimates"],
            raw["r"][16]["estimates"],
        )
    ]
    print(render_table(
        f"Figure 9: mean estimation bias on {DATASET} (EXP)",
        ["setting", "mean bias", "|F|/|E|"], rows,
    ))
    print()
    print(render_table(
        "Figure 9 scatter data (per vertex)",
        ["vertex", "Inf_gt", "Inf_out (r=1)", "Inf_out (r=16)"],
        scatter_rows,
    ))
    save_json(raw, results_path("fig9.json"))
    return raw


def bench_fig9_correlation(benchmark):
    raw = run_once(benchmark, generate)
    bias_r1 = raw["r"][1]["mean_bias"]
    bias_r16 = raw["r"][16]["mean_bias"]
    # Shape: r=1 over-estimates much more than r=16, and both over-estimate
    # on average (Theorem 4.6's one-sided guarantee).
    assert bias_r1 > bias_r16 - 0.01
    assert bias_r1 > 0.15
    assert abs(bias_r16) < 0.15


if __name__ == "__main__":
    generate()
