"""Figure 6 — edge-reduction ratio versus r (EXP).

Paper shape: |F|/|E| grows roughly logarithmically in r (finer partitions
undo less of the reduction), approaching a plateau.
"""

from __future__ import annotations

from repro.bench import ascii_plot, render_series, save_json
from repro.core import coarsen, robust_scc_refinement_sequence
from repro.datasets import load_dataset

from conftest import dataset_names, results_path, run_once

DATASETS = ("ca-hepph", "soc-slashdot", "higgs-twitter", "com-orkut")
R_MAX = 32
R_POINTS = (1, 2, 4, 8, 16, 32)


def generate() -> dict:
    raw: dict = {"r": list(R_POINTS), "datasets": {}}
    series = {}
    available = set(dataset_names())
    for name in DATASETS:
        if name not in available:
            continue
        graph = load_dataset(name, "exp", seed=0)
        # one shared sample chain => deterministically monotone ratios
        chain = robust_scc_refinement_sequence(graph, R_MAX, rng=0)
        ratios = []
        for r in R_POINTS:
            coarse, _ = coarsen(graph, chain[r - 1])
            ratios.append(100 * coarse.m / graph.m)
        raw["datasets"][name] = ratios
        series[name] = [f"{v:.1f}%" for v in ratios]
    print(render_series(
        "Figure 6: edge reduction ratio |F|/|E| vs r (EXP)",
        "r", list(R_POINTS), series,
    ))
    print()
    print(ascii_plot(
        list(R_POINTS), raw["datasets"], title="|F|/|E| (%) vs r",
        log_x=True,
    ))
    save_json(raw, results_path("fig6.json"))
    return raw


def bench_fig6_reduction_vs_r(benchmark):
    raw = run_once(benchmark, generate)
    for name, ratios in raw["datasets"].items():
        # Shape: ratio is non-decreasing in r (Theorem 4.14) ...
        assert ratios == sorted(ratios), name
        # ... and concave-ish where early growth is visible at all: the
        # r=16->32 step stays comparable to the r=1->2 step (the paper's
        # logarithmic growth).  Datasets whose giant robust SCC barely
        # fragments at small r (orkut-like cores) have a flat start and are
        # exempt — they only begin fragmenting at large r.
        if ratios[1] - ratios[0] > 1.0:
            assert (ratios[-1] - ratios[-2]) <= (ratios[1] - ratios[0]) * 4


if __name__ == "__main__":
    generate()
