"""Figure 7 — size distribution of the extracted r-robust SCCs (EXP).

Paper shape: a giant r-robust SCC exists (orders of magnitude larger than
the second-largest), and 99.9% of r-robust SCCs are singletons — which is
what makes |F'| << |F| and the sublinear implementation effective.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import average_degree, scc_size_distribution
from repro.bench import render_table, save_json
from repro.core import robust_scc_partition
from repro.datasets import load_dataset

from conftest import dataset_names, results_path, run_once

DATASETS = ("soc-slashdot", "higgs-twitter", "soc-livejournal", "com-friendster")
R = 16


def generate() -> dict:
    rows = []
    raw: dict = {}
    available = set(dataset_names())
    for name in DATASETS:
        if name not in available:
            continue
        graph = load_dataset(name, "exp", seed=0)
        partition = robust_scc_partition(graph, R, rng=0)
        sizes = np.sort(partition.block_sizes())[::-1]
        dist = scc_size_distribution(partition)
        singleton_share = 100 * dist.get(1, 0) / partition.n_blocks
        largest = partition.members_of(int(np.argmax(partition.block_sizes())))
        sub = graph.induced_subgraph(largest)
        rows.append([
            name,
            f"{int(sizes[0]):,}",
            f"{int(sizes[1]) if sizes.size > 1 else 0:,}",
            f"{singleton_share:.2f}%",
            f"{average_degree(sub.n, sub.m):.1f}",
            f"{average_degree(graph.n, graph.m):.1f}",
        ])
        raw[name] = {
            "largest": int(sizes[0]),
            "second_largest": int(sizes[1]) if sizes.size > 1 else 0,
            "singleton_share_pct": singleton_share,
            "largest_scc_avg_degree": average_degree(sub.n, sub.m),
            "graph_avg_degree": average_degree(graph.n, graph.m),
            "size_histogram": dist,
        }
    print(render_table(
        f"Figure 7: r-robust SCC size distribution (EXP, r={R})",
        ["dataset", "largest", "2nd largest", "singletons",
         "core avg deg", "graph avg deg"],
        rows,
    ))
    save_json(raw, results_path("fig7.json"))
    return raw


def bench_fig7_scc_sizes(benchmark):
    raw = run_once(benchmark, generate)
    for name, row in raw.items():
        # Shape: a giant robust SCC dwarfs the runner-up ...
        assert row["largest"] >= 10 * max(row["second_largest"], 1), name
        # ... nearly everything else is a singleton ...
        assert row["singleton_share_pct"] > 97.0, name
        # ... and the giant component is denser than the whole graph.
        assert row["largest_scc_avg_degree"] > row["graph_avg_degree"], name


if __name__ == "__main__":
    generate()
