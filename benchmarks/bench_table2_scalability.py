"""Table 2 — run time and memory of the proposed algorithm.

Paper: run time and peak memory of the linear-space (Algorithm 1) and
sublinear-space (Algorithm 2) implementations on every dataset, under the
EXP and TRI settings, at r = 16.  Headline shapes: both scale linearly in
graph size; the sublinear implementation uses ~10% of the memory at roughly
10x the run time; the linear implementation OOMs on the largest input.

Here the datasets are the registry's scaled-down analogues; the OOM row is
reproduced with an explicit memory budget (see DESIGN.md).
"""

from __future__ import annotations

import os
import tempfile

from repro.bench import Budget, format_seconds, render_table, run_budgeted, save_json
from repro.core import coarsen_influence_graph
from repro.datasets import load_dataset
from repro.storage import TripletStore

from conftest import dataset_names, results_path, run_once

R = 16
SETTINGS = ("exp", "tri")
# The paper's 256 GB server OOMs on ameblo for Algorithm 1 because input and
# output cannot fit together; scaled to our graphs, a 256 MB budget puts the
# same dataset over the line.
LINEAR_BUDGET = Budget(max_bytes=256 * 1024 * 1024)


def _linear(graph):
    return coarsen_influence_graph(graph, r=R, rng=0)


def _sublinear(src, workdir):
    # The input store already sits on disk (the paper's Algorithm 2 setup);
    # only the algorithm itself is measured.
    return coarsen_influence_graph(src, space="sublinear", out_path=os.path.join(workdir, "h.trip"), r=R, rng=0, work_dir=workdir
    )


def generate(settings=SETTINGS, title="Table 2", out_name="table2") -> dict:
    rows = []
    raw: dict = {}
    for name in dataset_names():
        cells = [name]
        raw[name] = {}
        for setting in settings:
            graph = load_dataset(name, setting, seed=0)
            estimated = (graph.n + 10 * graph.m) * 8  # CSR + samples + meet state
            out_lin = run_budgeted(
                lambda g=graph: _linear(g), LINEAR_BUDGET,
                estimated_bytes=estimated if name == "ameblo" else None,
            )
            with tempfile.TemporaryDirectory() as workdir:
                src = TripletStore.from_graph(
                    graph, os.path.join(workdir, "g.trip")
                )
                out_sub = run_budgeted(lambda s=src, w=workdir: _sublinear(s, w))
            cells += [
                out_lin.time_cell(), out_lin.memory_cell(),
                out_sub.time_cell(), out_sub.memory_cell(),
            ]
            raw[name][setting] = {
                "linear_status": out_lin.status,
                "linear_seconds": out_lin.run.seconds if out_lin.run else None,
                "linear_peak_mb": out_lin.run.peak_mb if out_lin.run else None,
                "sublinear_seconds": out_sub.run.seconds,
                "sublinear_peak_mb": out_sub.run.peak_mb,
                "n": graph.n,
                "m": graph.m,
            }
        rows.append(cells)
    header = ["dataset"]
    for setting in settings:
        tag = setting.upper()
        header += [f"{tag} Alg1 time", f"{tag} Alg1 mem",
                   f"{tag} Alg2 time", f"{tag} Alg2 mem"]
    table = render_table(
        f"{title}: run time and memory of the proposed algorithm (r={R})",
        header, rows,
    )
    print(table)
    save_json(raw, results_path(f"{out_name}.json"))
    with open(results_path(f"{out_name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return raw


def bench_table2_scalability(benchmark):
    raw = run_once(benchmark, generate)
    # Shape assertion: Algorithm 2's memory advantage shows once the edge
    # count dwarfs the streaming chunk buffers (the paper's regime); tiny
    # graphs are dominated by fixed-size buffers either way.
    for name, per_setting in raw.items():
        for setting, row in per_setting.items():
            if (
                row["linear_status"] == "ok"
                and row["m"] > 300_000
            ):
                assert row["sublinear_peak_mb"] < row["linear_peak_mb"]


if __name__ == "__main__":
    generate()
