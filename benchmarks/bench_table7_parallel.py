"""Table 7 — parallel implementations (Algorithm 6, Appendix C.1).

Paper: run time of the shared-memory (OpenMP) and distributed-memory (MPI)
parallelisations of both implementations with 1/4/16 threads; shapes: 3-4x
speed-up at 16 threads, the distributed variant pays communication overhead
on the linear-space side but wins for sublinear space.

Here the shared-memory variant maps to a thread pool and the distributed
one to a process pool (the graph is shipped to each worker, as the paper's
master ships it to MPI slaves).  NOTE: this container exposes a single CPU
core, so wall-clock speed-ups cannot materialise — the table demonstrates
overhead behaviour at 1 core and the test asserts correctness-of-structure
only (identical coarsening output is separately unit-tested).
"""

from __future__ import annotations

import os
import time

from repro.bench import format_seconds, render_table, save_json
from repro.core import coarsen_influence_graph_parallel
from repro.datasets import load_dataset

from conftest import dataset_names, results_path, run_once

R = 16
WORKER_COUNTS = (1, 4, 16)
DATASETS = ("ca-hepph", "soc-slashdot", "higgs-twitter", "twitter-2010")


def generate() -> dict:
    rows = []
    raw: dict = {}
    available = set(dataset_names())
    cores = os.cpu_count() or 1
    for name in DATASETS:
        if name not in available:
            continue
        graph = load_dataset(name, "exp", seed=0)
        raw[name] = {"cores": cores}
        cells = [name]
        for executor in ("thread", "process"):
            for workers in WORKER_COUNTS:
                if executor == "process" and workers > 4:
                    # the paper's MPI run uses a fixed slave count; spawning
                    # 16 python processes on one core only measures noise
                    cells.append("-")
                    continue
                t0 = time.perf_counter()
                res = coarsen_influence_graph_parallel(
                    graph, r=R, workers=workers, rng=0, executor=executor
                )
                seconds = time.perf_counter() - t0
                raw[name][f"{executor}-{workers}"] = {
                    "seconds": seconds,
                    "coarse_n": res.coarse.n,
                    "coarse_m": res.coarse.m,
                }
                cells.append(format_seconds(seconds))
        rows.append(cells)
    table = render_table(
        f"Table 7: parallel implementations (r={R}, EXP; host has "
        f"{cores} core(s))",
        ["dataset",
         "shared x1", "shared x4", "shared x16",
         "distributed x1", "distributed x4", "distributed x16"],
        rows,
    )
    print(table)
    save_json(raw, results_path("table7.json"))
    with open(results_path("table7.txt"), "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return raw


def bench_table7_parallel(benchmark):
    raw = run_once(benchmark, generate)
    for name, row in raw.items():
        # For a fixed worker count and seed, thread and process executors
        # must produce the identical coarsened graph (same derived RNG
        # streams); exact partition equality is covered by unit tests.
        for workers in WORKER_COUNTS:
            t = row.get(f"thread-{workers}")
            p = row.get(f"process-{workers}")
            if t and p:
                assert (t["coarse_n"], t["coarse_m"]) == (
                    p["coarse_n"], p["coarse_m"],
                ), (name, workers)
        if row["cores"] > 1:
            # With real cores, 4 threads must beat 1 (the paper's shape).
            assert row["thread-4"]["seconds"] < row["thread-1"]["seconds"]


if __name__ == "__main__":
    generate()
