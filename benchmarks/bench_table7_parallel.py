"""Table 7 — parallel implementations (Algorithm 6, Appendix C.1).

Paper: run time of the shared-memory (OpenMP) and distributed-memory (MPI)
parallelisations with 1/4/16 threads; shapes: 3-4x speed-up at 16 threads,
the distributed variant pays communication overhead on the linear-space
side but wins for sublinear space.

Here the shared-memory variant maps to a thread pool and the distributed
one to a process pool whose workers attach the CSR arrays through a
zero-copy ``multiprocessing.shared_memory`` broadcast (``repro.graph.shm``)
— the graph crosses the process boundary exactly once per pool, asserted
through the ``coarsen.parallel.broadcast_bytes`` metric rather than
timing.  The bench sweeps executors x workers over generated graphs of
increasing size (the same synthetic SCC workload as
``bench_ablation_scc``), prints the Table-7 analogue, and writes two
artefacts: the per-bench archive under ``benchmarks/results/`` and the
machine-readable repo-root ``BENCH_parallel.json`` (schema documented in
``docs/performance.md``).

CI runs ``python benchmarks/bench_table7_parallel.py --quick`` as a
correctness canary: one small graph, all three executors, byte-identical
coarse CSRs and exactly-once broadcast accounting asserted, no timing
assertions and no files written.

NOTE on hosts with one CPU core (such as this container): wall-clock
speed-up is physically impossible, so the process-vs-serial comparison is
recorded in the JSON ``acceptance`` block but only *asserted* when
``os.cpu_count() > 1``.
"""

from __future__ import annotations

import os
import sys
import time
import zlib

from repro import obs
from repro.bench import format_seconds, render_table, save_json
from repro.core import coarsen_influence_graph

from bench_ablation_scc import generated_graph
from conftest import results_path, run_once

R = 16
EXECUTORS = ("serial", "thread", "process")
WORKER_COUNTS = (1, 2, 4)
REPS = 2

#: (name, n, m) ascending; the largest is the acceptance-gate graph.
GENERATED_SIZES = (
    ("gen-20k-100k", 20_000, 100_000),
    ("gen-60k-300k", 60_000, 300_000),
    ("gen-120k-600k", 120_000, 600_000),
)
QUICK_SIZES = (("gen-2k-8k", 2_000, 8_000),)

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_parallel.json")


def _csr_payload_bytes(graph) -> int:
    return 8 * (graph.n + 1) + 16 * graph.m


def _run_cell(graph, executor: str, workers: int, reps: int) -> dict:
    """One (executor, workers) cell: best-of-``reps`` wall time plus the
    broadcast accounting captured through an isolated metrics registry."""
    best = float("inf")
    cell: dict = {}
    for _ in range(reps):
        registry = obs.MetricsRegistry()
        t0 = time.perf_counter()
        with obs.use_metrics(registry):
            res = coarsen_influence_graph(
                graph, r=R, workers=workers, rng=0, executor=executor
            )
        seconds = time.perf_counter() - t0
        broadcast = registry.counter("coarsen.parallel.broadcast_bytes")
        if executor == "process":
            # The tentpole invariant: the whole graph is serialised exactly
            # once per pool — one shared segment, nothing per task.
            assert broadcast == _csr_payload_bytes(graph), (
                executor, workers, broadcast)
        else:
            assert broadcast == 0, (executor, workers, broadcast)
        best = min(best, seconds)
        cell = {
            "seconds": seconds,
            "coarse_n": res.coarse.n,
            "coarse_m": res.coarse.m,
            "workers_effective": res.stats.extras["workers"],
            "meet_tree_depth": res.stats.extras["meet_tree_depth"],
            "broadcast_bytes": broadcast,
            "labels_digest": zlib.crc32(res.partition.labels.tobytes()),
        }
    cell["seconds"] = best
    return cell


def generate(quick: bool = False) -> dict:
    sizes = QUICK_SIZES if quick else GENERATED_SIZES
    reps = 1 if quick else REPS
    cores = os.cpu_count() or 1
    raw: dict = {
        "schema": "bench_parallel/v1",
        "cores": cores,
        "r": R,
        "worker_counts": list(WORKER_COUNTS),
        "graphs": [],
    }
    rows = []
    for name, n, m in sizes:
        graph = generated_graph(n, m)
        entry: dict = {"name": name, "n": graph.n, "m": graph.m,
                       "csr_payload_bytes": _csr_payload_bytes(graph),
                       "cells": {}}
        for executor in EXECUTORS:
            cells = [name, executor]
            for workers in WORKER_COUNTS:
                cell = _run_cell(graph, executor, workers, reps)
                entry["cells"][f"{executor}-{workers}"] = cell
                cells.append(format_seconds(cell["seconds"]))
            rows.append(cells)
        # Cross-executor determinism: for a fixed (r, workers, seed) all
        # three executors must produce the identical partition and coarse
        # CSR (unit tests pin array equality; here the digest + sizes).
        for workers in WORKER_COUNTS:
            reference = entry["cells"][f"serial-{workers}"]
            for executor in ("thread", "process"):
                cell = entry["cells"][f"{executor}-{workers}"]
                for key in ("coarse_n", "coarse_m", "labels_digest"):
                    assert cell[key] == reference[key], (name, executor,
                                                        workers, key)
        raw["graphs"].append(entry)

    largest = raw["graphs"][-1]
    # `asserted` records whether the timing gate was actually enforced on
    # this host: on a 1-core box a parallel win is physically impossible,
    # so the comparison is recorded but deliberately not asserted — and
    # trajectory tooling must not read the raw boolean as a regression.
    raw["acceptance"] = {
        "graph": largest["name"],
        "serial_4_seconds": largest["cells"]["serial-4"]["seconds"],
        "process_4_seconds": largest["cells"]["process-4"]["seconds"],
        "process_4_le_serial_4": (
            largest["cells"]["process-4"]["seconds"]
            <= largest["cells"]["serial-4"]["seconds"]
        ),
        "asserted": cores > 1,
        "skip_reason": (None if cores > 1 else
                        f"single-core host (os.cpu_count() == {cores}): "
                        "wall-clock parallel speedup is not asserted"),
    }

    table = render_table(
        f"Table 7: parallel implementations (r={R}, EXP analogue; host has "
        f"{cores} core(s); zero-copy shm broadcast for 'process')",
        ["graph", "executor"] + [f"x{w}" for w in WORKER_COUNTS],
        rows,
    )
    print(table)
    acc = raw["acceptance"]
    print(f"acceptance[{acc['graph']}]: process-4 "
          f"{format_seconds(acc['process_4_seconds'])} vs serial-4 "
          f"{format_seconds(acc['serial_4_seconds'])} "
          f"(process <= serial: {acc['process_4_le_serial_4']})")
    if cores == 1:
        print("note: single-core host — parallel wall-clock gains are "
              "physically impossible; the numbers above measure overhead "
              "(see docs/performance.md).")

    if not quick:
        save_json(raw, results_path("table7.json"))
        with open(results_path("table7.txt"), "w", encoding="utf-8") as handle:
            handle.write(table + "\n")
        save_json(raw, ROOT_JSON)
        if cores > 1:
            assert raw["acceptance"]["process_4_le_serial_4"], raw["acceptance"]
    return raw


def bench_table7_parallel(benchmark):
    raw = run_once(benchmark, generate)
    assert raw["schema"] == "bench_parallel/v1"
    for entry in raw["graphs"]:
        for workers in WORKER_COUNTS:
            t = entry["cells"][f"thread-{workers}"]
            p = entry["cells"][f"process-{workers}"]
            # Identical coarsening output per worker count (same derived
            # RNG streams, exact meet tree); broadcast accounting holds.
            assert (t["coarse_n"], t["coarse_m"]) == (
                p["coarse_n"], p["coarse_m"]), (entry["name"], workers)
            assert p["broadcast_bytes"] == entry["csr_payload_bytes"]
            assert t["broadcast_bytes"] == 0
        if raw["cores"] > 1:
            # With real cores, 4 threads must beat 1 (the paper's shape).
            cells = entry["cells"]
            assert (cells["thread-4"]["seconds"]
                    < cells["thread-1"]["seconds"]), entry["name"]


if __name__ == "__main__":
    generate(quick="--quick" in sys.argv)
