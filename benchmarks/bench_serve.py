"""The serving layer — cold vs warm vs batched query throughput.

The paper's headline scenario (Section 1, "batched audit") is many
influence queries amortising one coarsening.  ``repro.serve`` turns that
into an engine; this bench quantifies the three tiers a query can land on:

* **cold** — no cache, no pool: every query coarsens the graph and draws a
  fresh RR sketch (the naive per-query pipeline);
* **warm** — model cached, but each query builds its own sketch (the 1.0
  workflow: coarsen once, run an independent estimator per query);
* **batched** — the full serve path: one cached model, one shared sample
  pool, queries coalesced onto prefix scores.

Acceptance (asserted when writing artefacts): the batched serve path
(warm cache + coalescing) >= 3x cold throughput — the warm-alone tier is
informational — and batched answers are bit-for-bit identical to issuing
the same queries sequentially — the coalescing-correctness property the
pool's prefix semantics guarantee.  Results land in
``benchmarks/results/serve.json`` and the repo-root ``BENCH_serve.json``.

CI runs ``python benchmarks/bench_serve.py --quick`` as a correctness
canary: a small graph, the equality assertions, no timing gates and no
files written.
"""

from __future__ import annotations

import os
import sys
import time

from repro.estimators import make_estimator
from repro.bench import format_seconds, render_table, save_json
from repro.core import coarsen_influence_graph, estimate_on_coarse
from repro.serve import InfluenceService, ServiceConfig

from bench_ablation_scc import generated_graph
from conftest import results_path, run_once

R = 8
N_SAMPLES = 4_000
QUERIES = 24
GRAPH_N, GRAPH_M = 30_000, 150_000
QUICK_N, QUICK_M = 2_000, 8_000
QUICK_QUERIES = 6

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_serve.json")


def _seed_sets(n: int, queries: int) -> list[list[int]]:
    """Deterministic single- and multi-vertex seed sets within [0, n)."""
    return [[(7 * i) % n, (13 * i + 1) % n][: 1 + i % 2]
            for i in range(queries)]


def _cold(graph, seed_sets) -> tuple[float, list[float]]:
    """Every query pays coarsening + a fresh sketch (no reuse at all)."""
    t0 = time.perf_counter()
    values = []
    for i, seeds in enumerate(seed_sets):
        result = coarsen_influence_graph(graph, r=R, rng=0)
        estimator = make_estimator("ris", n_samples=N_SAMPLES, rng=0)
        values.append(estimate_on_coarse(result, seeds, estimator))
    return time.perf_counter() - t0, values


def _warm(graph, seed_sets) -> tuple[float, list[float]]:
    """Model computed once; each query still draws its own sketch."""
    result = coarsen_influence_graph(graph, r=R, rng=0)
    t0 = time.perf_counter()
    values = []
    for seeds in seed_sets:
        estimator = make_estimator("ris", n_samples=N_SAMPLES, rng=0)
        values.append(estimate_on_coarse(result, seeds, estimator))
    return time.perf_counter() - t0, values


def _batched(graph, seed_sets, config) -> tuple[float, list[float]]:
    """The serve path: cached model + one shared pool, one batch call."""
    with InfluenceService(config) as service:
        service.model_for(graph)  # build outside the query timing
        t0 = time.perf_counter()
        results = service.estimate_many(graph, seed_sets)
        seconds = time.perf_counter() - t0
    return seconds, [q.value for q in results]


def _sequential_serve(graph, seed_sets, config) -> list[float]:
    """The same queries one at a time on a fresh service (the equality
    reference for the bit-for-bit batched == sequential assertion)."""
    with InfluenceService(config) as service:
        return [service.estimate(graph, seeds).value for seeds in seed_sets]


def generate(quick: bool = False) -> dict:
    n, m = (QUICK_N, QUICK_M) if quick else (GRAPH_N, GRAPH_M)
    queries = QUICK_QUERIES if quick else QUERIES
    graph = generated_graph(n, m)
    seed_sets = _seed_sets(graph.n, queries)
    config = ServiceConfig(r=R, seed=0, n_samples=N_SAMPLES,
                           min_samples=min(128, N_SAMPLES))

    cold_s, cold_values = _cold(graph, seed_sets)
    warm_s, warm_values = _warm(graph, seed_sets)
    batched_s, batched_values = _batched(graph, seed_sets, config)
    sequential_values = _sequential_serve(graph, seed_sets, config)

    # Coalescing correctness: a batch returns exactly what one-at-a-time
    # returns (shared pool + prefix scoring => identical floats).
    assert batched_values == sequential_values, "batched != sequential"
    # Cold and warm share one (r, rng) coarsening and one estimator seed,
    # so their per-query values agree too.
    assert cold_values == warm_values

    qps = {
        "cold": queries / cold_s,
        "warm": queries / warm_s,
        "batched": queries / batched_s,
    }
    raw = {
        "schema": "bench_serve/v1",
        "graph": {"n": graph.n, "m": graph.m},
        "r": R,
        "n_samples": N_SAMPLES,
        "queries": queries,
        "seconds": {"cold": cold_s, "warm": warm_s, "batched": batched_s},
        "queries_per_second": qps,
        "speedup_vs_cold": {
            "warm": qps["warm"] / qps["cold"],
            "batched": qps["batched"] / qps["cold"],
        },
        "batched_equals_sequential": batched_values == sequential_values,
    }

    rows = [[tier, format_seconds(raw["seconds"][tier]),
             f"{qps[tier]:.1f}", f"{raw['speedup_vs_cold'].get(tier, 1.0):.1f}x"
             if tier != "cold" else "1.0x"]
            for tier in ("cold", "warm", "batched")]
    print(render_table(
        f"Serve: {queries} estimate queries "
        f"(n={graph.n:,}, m={graph.m:,}, r={R}, {N_SAMPLES} RR sets/query)",
        ["tier", "total", "queries/s", "vs cold"],
        rows,
    ))
    print(f"batched == sequential (bit-for-bit): "
          f"{raw['batched_equals_sequential']}")

    if not quick:
        # The acceptance gate: the serve path (warm cache + batched
        # coalescing) must beat the naive cold path by >= 3x.  The
        # warm-alone tier is informational — it isolates how much of the
        # win is cache vs pool.
        assert raw["speedup_vs_cold"]["batched"] >= 3.0, raw["speedup_vs_cold"]
        assert raw["speedup_vs_cold"]["warm"] >= 1.0, raw["speedup_vs_cold"]
        save_json(raw, results_path("serve.json"))
        save_json(raw, ROOT_JSON)
    return raw


def bench_serve(benchmark):
    raw = run_once(benchmark, generate)
    assert raw["schema"] == "bench_serve/v1"
    assert raw["batched_equals_sequential"]
    # The serve path always beats recoarsening per query, even in quick
    # mode: it skips 5 of 6 coarsenings and 5 of 6 sketches outright.
    assert raw["seconds"]["batched"] < raw["seconds"]["cold"]


if __name__ == "__main__":
    generate(quick="--quick" in sys.argv)
