"""Table 6 — run-time comparison with COARSENET and SPINE (EXP).

Paper: the proposed linear-space algorithm versus COARSENET [40] and SPINE
[33] at matched edge-reduction ratios.  Headline shapes: the proposed method
is orders of magnitude faster as graphs grow; COARSENET only finishes on
graphs up to tens of millions of edges before exhausting memory (dense
eigensolver state); SPINE only finishes on the smallest dataset.

The OOM rows are reproduced with explicit budgets: COARSENET is charged the
dense-matrix footprint its reference implementation hands to the Octave
eigensolver (n^2 doubles), SPINE the candidate-parent index over a |V|-sized
cascade log.  Runs whose estimate exceeds the scaled budget are reported OOM
without executing, mirroring which systems fell over in the paper.
"""

from __future__ import annotations

import time

from repro.baselines import coarsenet, generate_cascades, spine
from repro.bench import Budget, format_seconds, render_table, run_budgeted, save_json
from repro.core import coarsen_influence_graph
from repro.datasets import load_dataset

from conftest import dataset_names, results_path, run_once

R = 16
# Scaled analogue of the paper's 256 GB: COARSENET's dense n x n eigensolver
# state OOMs first, then SPINE's cascade index.
MEMORY_BUDGET = Budget(max_bytes=1024 * 1024 * 1024, max_seconds=600.0)
SPINE_PROBE_CASCADES = 10
_INDEX_ENTRY_BYTES = 16  # candidate-parent index entry (CPython int in list)


def _spine_estimates(graph, n_cascades: int) -> tuple[int, float]:
    """Extrapolate SPINE's index memory and run time from a small probe.

    The paper feeds SPINE |V| cascades; its candidate-parent index grows
    with (total activations) x (average candidate parents), which the probe
    measures directly.
    """
    from repro.baselines.spine import _candidate_edges

    probe = generate_cascades(graph, SPINE_PROBE_CASCADES, rng=2)
    t0 = time.perf_counter()
    index = _candidate_edges(graph, probe)
    probe_seconds = time.perf_counter() - t0
    entries = sum(len(ev) for ev in index.events)
    scale = n_cascades / SPINE_PROBE_CASCADES
    estimated_bytes = int(entries * scale * _INDEX_ENTRY_BYTES)
    # Selection adds a superlinear factor on top of indexing; 20x the
    # indexing extrapolation is a deliberately generous lower bound.
    estimated_seconds = probe_seconds * scale * 20
    return estimated_bytes, estimated_seconds


def generate() -> dict:
    rows = []
    raw: dict = {}
    for name in dataset_names():
        graph = load_dataset(name, "exp", seed=0)

        t0 = time.perf_counter()
        ours = coarsen_influence_graph(graph, r=R, rng=0)
        ours_seconds = time.perf_counter() - t0
        target = max(ours.stats.edge_reduction_ratio, 0.01)

        coarsenet_estimated = graph.n * graph.n * 8  # dense eigensolver state
        out_cnet = run_budgeted(
            lambda: coarsenet(graph, target_edge_ratio=target),
            MEMORY_BUDGET,
            estimated_bytes=coarsenet_estimated,
            track_memory=False,
        )

        n_cascades = graph.n  # the paper's setting: |V| cascades
        spine_bytes, spine_seconds_est = _spine_estimates(graph, n_cascades)

        def run_spine():
            cascades = generate_cascades(graph, n_cascades, rng=1)
            return spine(graph, max(1, int(graph.m * target)), cascades)

        out_spine = run_budgeted(
            run_spine, MEMORY_BUDGET,
            estimated_bytes=spine_bytes,
            estimated_seconds=spine_seconds_est,
            track_memory=False,
        )

        rows.append([
            name,
            format_seconds(ours_seconds),
            out_cnet.time_cell(),
            out_spine.time_cell(),
        ])
        raw[name] = {
            "ours_seconds": ours_seconds,
            "target_edge_ratio": target,
            "coarsenet_status": out_cnet.status,
            "coarsenet_seconds": out_cnet.run.seconds if out_cnet.run else None,
            "spine_status": out_spine.status,
            "spine_seconds": out_spine.run.seconds if out_spine.run else None,
        }
    table = render_table(
        "Table 6: run time vs COARSENET and SPINE (EXP, matched reduction)",
        ["dataset", "This work (Alg.1)", "COARSENET", "SPINE"],
        rows,
    )
    print(table)
    save_json(raw, results_path("table6.json"))
    with open(results_path("table6.txt"), "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return raw


def bench_table6_baselines(benchmark):
    raw = run_once(benchmark, generate)
    for name, row in raw.items():
        # Shape: wherever COARSENET ran, the proposed method is faster.
        if row["coarsenet_seconds"] is not None:
            assert row["ours_seconds"] < row["coarsenet_seconds"], name
        # Shape: SPINE only survives the smallest graphs.
        if row["spine_seconds"] is not None:
            assert row["ours_seconds"] < row["spine_seconds"], name
    if "twitter-2010" in raw:  # large tier included
        # Shape: the baselines fall over as scale grows.
        assert raw["twitter-2010"]["spine_status"] != "ok"
        assert raw["twitter-2010"]["coarsenet_status"] != "ok"


if __name__ == "__main__":
    generate()
