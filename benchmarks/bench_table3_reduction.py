"""Table 3 — effect of the proposed algorithm on graph size.

Paper: |W|, |W|/|V|, |F|, |F|/|E| for every dataset under EXP and TRI at
r = 16.  Headline shapes: edges shrink much more than vertices (the merged
r-robust SCCs are dense); EXP reduces more than TRI; the dense-cored social
networks (orkut / friendster analogues) reduce most, down to a few percent.
"""

from __future__ import annotations

from repro.bench import render_table, save_json
from repro.core import coarsen_influence_graph
from repro.datasets import load_dataset

from conftest import dataset_names, results_path, run_once

R = 16
SETTINGS = ("exp", "tri")

# Paper's Table 3 percentages, for side-by-side comparison in the output.
PAPER = {
    "ca-hepph": {"exp": (88.7, 31.2), "tri": (96.5, 53.9)},
    "soc-slashdot": {"exp": (95.2, 36.0), "tri": (99.1, 70.0)},
    "web-notredame": {"exp": (98.6, 72.4), "tri": (99.6, 85.9)},
    "wiki-talk": {"exp": (99.8, 61.4), "tri": (99.9, 73.2)},
    "com-youtube": {"exp": (98.7, 57.5), "tri": (99.8, 74.8)},
    "higgs-twitter": {"exp": (89.0, 27.4), "tri": (97.8, 66.6)},
    "soc-pokec": {"exp": (89.0, 43.4), "tri": (99.6, 95.6)},
    "soc-livejournal": {"exp": (92.8, 42.2), "tri": (99.0, 78.2)},
    "com-orkut": {"exp": (43.3, 3.6), "tri": (80.5, 27.3)},
    "twitter-2010": {"exp": (93.2, 23.5), "tri": (97.8, 40.3)},
    "com-friendster": {"exp": (71.2, 4.7), "tri": (86.5, 15.4)},
    "uk-2007-05": {"exp": (97.3, 41.8), "tri": (99.2, 69.4)},
    "ameblo": {"exp": (99.4, 79.3), "tri": (99.9, 98.9)},
}


def generate(settings=SETTINGS, title="Table 3", out_name="table3",
             paper=PAPER) -> dict:
    rows = []
    raw: dict = {}
    for name in dataset_names():
        cells = [name]
        raw[name] = {}
        for setting in settings:
            graph = load_dataset(name, setting, seed=0)
            res = coarsen_influence_graph(graph, r=R, rng=0)
            wv = 100 * res.stats.vertex_reduction_ratio
            fe = 100 * res.stats.edge_reduction_ratio
            paper_wv, paper_fe = paper[name].get(setting, ("-", "-"))
            cells += [
                f"{res.coarse.n:,}", f"{wv:.1f}%", f"({paper_wv}%)",
                f"{res.coarse.m:,}", f"{fe:.1f}%", f"({paper_fe}%)",
            ]
            raw[name][setting] = {
                "W": res.coarse.n, "F": res.coarse.m,
                "W_over_V": wv, "F_over_E": fe,
                "paper_W_over_V": paper_wv, "paper_F_over_E": paper_fe,
            }
        rows.append(cells)
    header = ["dataset"]
    for setting in settings:
        tag = setting.upper()
        header += [f"{tag} |W|", "|W|/|V|", "paper", f"{tag} |F|",
                   "|F|/|E|", "paper"]
    table = render_table(
        f"{title}: graph-size reduction (r={R}); paper's ratio in parens",
        header, rows,
    )
    print(table)
    save_json(raw, results_path(f"{out_name}.json"))
    with open(results_path(f"{out_name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return raw


def bench_table3_reduction(benchmark):
    raw = run_once(benchmark, generate)
    for name, per_setting in raw.items():
        exp, tri = per_setting["exp"], per_setting["tri"]
        # Shape: TRI (lower probabilities) always reduces less than EXP.
        assert tri["F_over_E"] >= exp["F_over_E"]
        # Shape: edges shrink at least as much as vertices.
        assert exp["F_over_E"] <= exp["W_over_V"] + 1e-9


if __name__ == "__main__":
    generate()
