"""Table 8 — Table 2 (run time / memory) under the UC and WC settings.

Paper shapes: UC behaves like EXP; WC's probabilities (1/indegree) are tiny
on hubs, so both implementations still run at full speed and memory is
unchanged (the algorithms' cost does not depend on the setting).
"""

from __future__ import annotations

from bench_table2_scalability import generate as _generate

from conftest import run_once


def generate() -> dict:
    return _generate(settings=("uc", "wc"), title="Table 8",
                     out_name="table8")


def bench_table8_scalability_ucwc(benchmark):
    raw = run_once(benchmark, generate)
    for name, per_setting in raw.items():
        for setting, row in per_setting.items():
            if row["linear_status"] == "ok":
                assert row["linear_seconds"] > 0


if __name__ == "__main__":
    generate()
