"""Figure 4 — run time of both implementations versus r (EXP).

Paper shape: run time of both implementations scales linearly in r.

Every Alg.1 run executes under an in-memory tracer, so alongside the
figure the benchmark prints a per-stage (sample/scc/meet/contract) time
table sourced from the spans — the attribution any optimization PR must
quote before and after.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.bench import (
    aggregate_spans,
    ascii_plot,
    COARSEN_STAGES,
    render_series,
    render_stage_table,
    run_traced,
    save_json,
)
from repro.core import coarsen_influence_graph
from repro.datasets import load_dataset
from repro.storage import TripletStore

from conftest import results_path, run_once

DATASET = "soc-slashdot"
R_VALUES = (1, 2, 4, 8, 16, 32)


def generate() -> dict:
    graph = load_dataset(DATASET, "exp", seed=0)
    linear_times = []
    sublinear_times = []
    stage_rows = []
    for r in R_VALUES:
        t0 = time.perf_counter()
        _, spans = run_traced(lambda: coarsen_influence_graph(graph, r=r, rng=0))
        linear_times.append(time.perf_counter() - t0)
        stage_rows.append((f"r={r}", aggregate_spans(spans, COARSEN_STAGES)))
        with tempfile.TemporaryDirectory() as workdir:
            src = TripletStore.from_graph(graph, os.path.join(workdir, "g.trip"))
            t0 = time.perf_counter()
            coarsen_influence_graph(src, space="sublinear", out_path=os.path.join(workdir, "h.trip"), r=r, rng=0,
                work_dir=workdir,
            )
            sublinear_times.append(time.perf_counter() - t0)
    raw = {
        "dataset": DATASET,
        "r": list(R_VALUES),
        "linear_seconds": linear_times,
        "sublinear_seconds": sublinear_times,
        "stage_seconds": {
            label: {s: agg[s]["seconds"] for s in agg}
            for label, agg in stage_rows
        },
    }
    print(render_series(
        f"Figure 4: run time vs r on {DATASET} (EXP)",
        "r", list(R_VALUES),
        {
            "Alg.1 (linear space)": [f"{t:.3f} s" for t in linear_times],
            "Alg.2 (sublinear space)": [f"{t:.3f} s" for t in sublinear_times],
        },
    ))
    print()
    print(ascii_plot(
        list(R_VALUES),
        {"Alg.1": linear_times, "Alg.2": sublinear_times},
        title="run time (s) vs r", log_x=True,
    ))
    print()
    print(render_stage_table(
        f"Alg.1 per-stage time on {DATASET} (from tracer spans)", stage_rows,
    ))
    save_json(raw, results_path("fig4.json"))
    return raw


def bench_fig4_time_vs_r(benchmark):
    raw = run_once(benchmark, generate)
    # Shape: time grows roughly linearly in r — r=32 costs well under
    # 100x the r=1 run (it should be ~32x modulo constant overheads).
    lin = raw["linear_seconds"]
    assert lin[-1] <= 100 * max(lin[0], 1e-3)
    # and monotone-ish: the largest r is the most expensive of the sweep.
    assert lin[-1] >= max(lin[:3]) * 0.8


if __name__ == "__main__":
    generate()
