"""Figure 8 — cumulative distribution of the maximum SCC rate of the
subgraph induced by the largest r-robust SCC (EXP).

Paper shape: most of the largest r-robust SCC is strongly connected in a
random live-edge sample with high probability (e.g. 93% of slashdot's
largest component is strongly connected with probability 0.9) — the
empirical justification that coarsening these components barely distorts
the influence function (Section 7.4).

The paper samples 10,000 live-edge graphs; scaled to laptop budgets this
uses 400 per dataset, which resolves the CDF to ~2.5% granularity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import max_scc_rate_samples
from repro.bench import render_series, save_json
from repro.core import robust_scc_partition
from repro.datasets import load_dataset

from conftest import dataset_names, results_path, run_once

DATASETS = ("soc-slashdot", "higgs-twitter", "com-orkut")
R = 16
N_SAMPLES = 400
THRESHOLDS = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99)


def generate() -> dict:
    raw: dict = {"thresholds": list(THRESHOLDS), "datasets": {}}
    series = {}
    available = set(dataset_names())
    for name in DATASETS:
        if name not in available:
            continue
        graph = load_dataset(name, "exp", seed=0)
        partition = robust_scc_partition(graph, R, rng=0)
        largest_label = int(np.argmax(partition.block_sizes()))
        members = partition.members_of(largest_label)
        sub = graph.induced_subgraph(members)
        rates = max_scc_rate_samples(sub, n_samples=N_SAMPLES, rng=1)
        survival = [float(np.mean(rates > t)) for t in THRESHOLDS]
        raw["datasets"][name] = {
            "component_size": int(members.size),
            "survival": survival,
            "mean_rate": float(rates.mean()),
        }
        series[name] = [f"{100 * s:.1f}%" for s in survival]
    print(render_series(
        f"Figure 8: Pr[max SCC rate > theta] for the largest {R}-robust SCC "
        f"(EXP, {N_SAMPLES} samples)",
        "theta", list(THRESHOLDS), series,
    ))
    save_json(raw, results_path("fig8.json"))
    return raw


def bench_fig8_robustness(benchmark):
    raw = run_once(benchmark, generate)
    for name, row in raw["datasets"].items():
        # Shape: the bulk of the component is strongly connected with high
        # probability — Pr[rate > 0.8] close to one.
        assert row["survival"][2] > 0.9, name
        assert row["mean_rate"] > 0.8, name


if __name__ == "__main__":
    generate()
