"""Ablation — SCC backend comparison (fwbw vs Tarjan vs Kosaraju vs scipy
vs semi-external FB) and the refinement-aware r-robust fold.

The r-robust SCC stage runs one SCC computation per sample, so the backend
constant dominates Algorithm 1's run time.  This bench quantifies:

* raw kernel throughput per backend on generated graphs of increasing size
  (the vectorised ``fwbw`` backend is the headline — its lead grows with
  the graph because the pure-Python loops pay per edge while numpy pays per
  frontier);
* the refinement-aware fold (``refine=True``) versus full per-sample
  recomputation at several ``r`` — block-restricted retirement shrinks the
  per-round processed-edge counts as the running meet accumulates
  singletons;
* the batched multi-sample kernel versus the per-sample fold, including a
  deep amortisation tier (``gen-1k-deep``: long trim-wave chains, tiny
  frontiers) where per-call fixed costs dominate and batching must at
  least double aggregate fold throughput;
* the historical dataset table (live-edge samples of a real-workload
  analogue), plus the streaming semi-external algorithm's overhead (its
  value is the O(V) memory contract, not speed).

Raw numbers go to two places: the per-bench archive under
``benchmarks/results/`` and the machine-readable perf trajectory at the
repo root, ``BENCH_scc.json`` (schema documented in
``docs/performance.md``) — regenerate the latter with::

    python benchmarks/bench_ablation_scc.py

CI runs ``python benchmarks/bench_ablation_scc.py --quick`` as a
correctness canary: small graphs, fwbw-vs-tarjan partition equality, no
timing assertions and no files written.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

import numpy as np

from repro.bench import render_table, save_json
from repro.core import robust_scc_partition
from repro.datasets import load_dataset
from repro.diffusion import sample_live_edge_csr
from repro.diffusion.live_edge import sample_live_edge_mask
from repro.graph import InfluenceGraph
from repro.partition import Partition
from repro.rng import ensure_rng
from repro.scc import multi_scc_labels, scc_labels, semi_external_scc_labels
from repro.scc.fwbw import fwbw_scc_labels
from repro.storage import PairStore

from conftest import results_path, run_once

DATASET = "twitter-2010"
SAMPLES = 4
KERNEL_BACKENDS = ("fwbw", "tarjan", "kosaraju", "scipy")

#: (name, n, m) for the generated size sweep; the largest is the graph the
#: kernel/refinement acceptance gates read (``generated[-1]`` in
#: ``BENCH_scc.json``).
GENERATED_SIZES = (
    ("gen-20k-100k", 20_000, 100_000),
    ("gen-60k-300k", 60_000, 300_000),
    ("gen-120k-600k", 120_000, 600_000),
)
#: (name, n) for the deep amortisation tier — always ``generated[0]``,
#: the entry the batched kernel's >= 2x gate reads.
DEEP_TIER = ("gen-1k-deep", 1_000)
R_VALUES = (4, 16)
ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_scc.json")


def generated_graph(n: int, m: int, seed: int = 0) -> InfluenceGraph:
    """A synthetic SCC workload: skewed out-degrees (a dense core emerges,
    like the paper's social graphs) plus a 15% reciprocal-edge slab (the
    many small 2-cycles that make pure FW-BW decompose deeply).

    Probabilities sit in the realistic IC range [0.05, 0.35], where the
    r-robust meet fragments towards singletons as ``r`` grows — the regime
    the paper reports for real networks (99.9% singleton r-robust SCCs) and
    the one where block-restricted retirement has work to mask.  The kernel
    throughput rows are unaffected (they run on the full topology).
    """
    rng = ensure_rng(seed)
    tails = (n * rng.random(m) ** 2).astype(np.int64)
    heads = rng.integers(0, n, m, dtype=np.int64)
    k = int(m * 0.15) // 2
    tails = np.concatenate([tails, heads[:k]])
    heads = np.concatenate([heads, tails[:k]])
    keep = tails != heads
    tails, heads = tails[keep], heads[keep]
    uniq = np.unique(tails * n + heads)
    tails, heads = uniq // n, uniq % n
    probs = rng.uniform(0.05, 0.35, tails.size)
    return InfluenceGraph.from_edges(n, tails, heads, probs)


def deep_generated_graph(n: int, seed: int = 0) -> InfluenceGraph:
    """The amortisation workload: long dependency chains, tiny frontiers.

    Three ingredients:

    * a probabilistic ring over most vertices (p = 0.9) — live-edge
      samples break it into long path fragments whose trim peel advances
      one vertex per wave, so each sample costs *hundreds of sequential
      frontier waves over tiny arrays*;
    * a slab of always-live 4-cycles (p = 1.0) — robust blocks that
      survive every sample, so neither fold path can take the
      finest-partition early exit and both pay all ``r`` rounds;
    * sparse forward chords (p = 0.25) for mild branching.

    In this regime per-wave numpy dispatch dominates the fold — exactly
    the fixed cost the batched kernel amortises: one union wave serves
    every live round at once, where the per-sample fold re-pays it ``r``
    times.  This is the tier the batched kernel's acceptance gate reads;
    the shallow tiers above are cache-bound and batching is ~par there.
    """
    rng = ensure_rng(seed)
    c = max(8, n // 20) & ~3  # vertices living in always-live 4-cycles
    cyc = np.arange(c, dtype=np.int64)
    ring = np.arange(c, n, dtype=np.int64)
    ring_next = np.where(ring + 1 < n, ring + 1, c)
    # Chord offsets in [2, 50) can never collide with a ring edge or form
    # a self-loop (the ring segment is far longer than 50); only
    # chord-chord duplicates need dropping.
    k = n // 4
    chord_t = rng.integers(c, n, k)
    chord_h = c + (chord_t - c + rng.integers(2, 50, k)) % (n - c)
    pair = np.unique(chord_t * np.int64(n) + chord_h)
    chord_t, chord_h = pair // n, pair % n
    tails = np.concatenate([cyc, ring, chord_t])
    heads = np.concatenate([(cyc // 4) * 4 + (cyc + 1) % 4, ring_next,
                            chord_h])
    probs = np.concatenate([np.full(c, 1.0), np.full(ring.size, 0.9),
                            np.full(chord_t.size, 0.25)])
    order = np.lexsort((heads, tails))
    return InfluenceGraph.from_edges(n, tails[order], heads[order],
                                     probs[order])


def _time_best(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _kernel_sweep(graph: InfluenceGraph, reference_check: bool = True) -> dict:
    """Per-backend throughput on the graph's own CSR (pure SCC, no fold)."""
    indptr, heads = graph.indptr, graph.heads
    out: dict = {}
    reference: "Partition | None" = None
    for backend in KERNEL_BACKENDS:
        labels = scc_labels(indptr, heads, backend=backend)
        if reference_check:
            partition = Partition(labels)
            if reference is None:
                reference = partition
            else:
                assert partition == reference, backend
        seconds = _time_best(lambda b=backend: scc_labels(indptr, heads,
                                                          backend=b))
        out[backend] = {
            "wall_seconds": seconds,
            "edges_per_sec": graph.m / seconds if seconds else float("inf"),
        }
    return out


def _robust_modes(graph: InfluenceGraph, r: int) -> dict:
    """The r-robust fold: batched multi vs refinement-aware fwbw vs full
    per-sample recomputation.

    Identical partitions are asserted (the restriction is exact and the
    batched kernel is bit-for-bit the per-sample fold); the per-round
    processed/masked edge counts come from a manual fold so the reduction
    is visible round by round, not just in aggregate.  ``edges_per_sec``
    is the *aggregate* robust-partition throughput — ``r * m`` edge-rounds
    over the whole fold — the number the batched kernel's acceptance gate
    reads.
    """
    out: dict = {}
    for mode, backend, refine in (
        ("multi-full", "multi", False),
        ("multi-refine", "multi", True),
        ("fwbw-refine", "fwbw", True),
        ("fwbw-full", "fwbw", False),
        ("tarjan-full", "tarjan", False),
    ):
        t0 = time.perf_counter()
        partition = robust_scc_partition(graph, r, rng=0,
                                         scc_backend=backend, refine=refine)
        seconds = time.perf_counter() - t0
        out[mode] = {
            "wall_seconds": seconds,
            "edges_per_sec": r * graph.m / seconds if seconds else float("inf"),
            "blocks": partition.n_blocks,
        }
    assert (out["multi-full"]["blocks"] == out["multi-refine"]["blocks"]
            == out["fwbw-refine"]["blocks"] == out["fwbw-full"]["blocks"]
            == out["tarjan-full"]["blocks"])

    # Batch-occupancy accounting for the amortisation claim: one batched
    # run over the same masks the per-sample fold would draw.
    rng = ensure_rng(0)
    masks = np.stack([sample_live_edge_mask(graph, rng) for _ in range(r)])
    _, mstats = multi_scc_labels(graph.indptr, graph.heads, masks,
                                 return_stats=True)
    out["multi-full"]["kernel_rounds"] = mstats.rounds
    out["multi-full"]["mean_occupancy"] = (
        mstats.occupancy / mstats.rounds if mstats.rounds else 0.0
    )
    out["multi-full"]["retired_rounds"] = mstats.retired_rounds

    # Round-by-round work accounting for the refinement claim: fold the
    # SAME samples with and without block restriction, so the per-round
    # processed-edge reduction is an apples-to-apples measurement.
    rng = ensure_rng(0)
    samples = [sample_live_edge_csr(graph, rng) for _ in range(r)]
    for mode, use_blocks in (("fwbw-refine", True), ("fwbw-full", False)):
        partition = Partition.trivial(graph.n)
        processed, masked = [], []
        for i, (indptr, heads) in enumerate(samples):
            blocks = partition.labels if use_blocks and i else None
            labels, stats = fwbw_scc_labels(indptr, heads,
                                            block_labels=blocks,
                                            return_stats=True)
            processed.append(stats.processed_edges)
            masked.append(stats.masked_edges)
            partition = partition.meet(Partition(labels, canonical=False))
        out[mode]["processed_edges_per_round"] = processed
        out[mode]["masked_edges_per_round"] = masked
    return out


def generate() -> dict:
    raw: dict = {
        "schema": "bench_scc/v2",
        "generated": [],
        "dataset": {"name": DATASET, "samples": SAMPLES, "backends": {}},
    }

    # ---- generated size sweep: kernel throughput + robust fold ----------
    # The deep amortisation tier leads (generated[0], the batched
    # kernel's gate entry), then the shallow size sweep (generated[-1]
    # stays the largest shallow graph, which the kernel gates read).
    graphs = [(DEEP_TIER[0], deep_generated_graph(DEEP_TIER[1]))]
    graphs += [(name, generated_graph(n, m)) for name, n, m in GENERATED_SIZES]
    kernel_rows = []
    for name, graph in graphs:
        entry = {
            "name": name,
            "n": graph.n,
            "m": graph.m,
            "kernel": _kernel_sweep(graph),
            "robust": {str(r): _robust_modes(graph, r) for r in R_VALUES},
        }
        raw["generated"].append(entry)
        base = entry["kernel"]["tarjan"]["edges_per_sec"]
        for backend in KERNEL_BACKENDS:
            stats = entry["kernel"][backend]
            kernel_rows.append([
                name, backend, f"{stats['wall_seconds'] * 1e3:.1f} ms",
                f"{stats['edges_per_sec'] / 1e6:.2f} Me/s",
                f"{stats['edges_per_sec'] / base:.2f}x",
            ])
    print(render_table(
        "Ablation: SCC kernel throughput on generated graphs "
        "(identical partitions verified; speedup vs tarjan)",
        ["graph", "backend", "wall", "throughput", "speedup"],
        kernel_rows,
    ))

    refine_rows = []
    for entry in raw["generated"]:
        for r in R_VALUES:
            modes = entry["robust"][str(r)]
            proc_refine = sum(modes["fwbw-refine"]["processed_edges_per_round"])
            proc_full = sum(modes["fwbw-full"]["processed_edges_per_round"])
            refine_rows.append([
                entry["name"], str(r),
                f"{modes['fwbw-refine']['wall_seconds']:.3f} s",
                f"{modes['fwbw-full']['wall_seconds']:.3f} s",
                f"{modes['tarjan-full']['wall_seconds']:.3f} s",
                str(sum(modes['fwbw-refine']['masked_edges_per_round'])),
                f"{1 - proc_refine / proc_full:.1%}",
            ])
    print(render_table(
        "Ablation: r-robust fold — refinement-aware fwbw vs full "
        "recomputation (identical partitions verified)",
        ["graph", "r", "fwbw refine", "fwbw full", "tarjan full",
         "masked edges", "edges saved"],
        refine_rows,
    ))

    batched_rows = []
    for entry in raw["generated"]:
        for r in R_VALUES:
            modes = entry["robust"][str(r)]
            multi = modes["multi-full"]
            base = modes["fwbw-full"]
            batched_rows.append([
                entry["name"], str(r),
                f"{multi['wall_seconds']:.3f} s",
                f"{modes['multi-refine']['wall_seconds']:.3f} s",
                f"{base['wall_seconds']:.3f} s",
                f"{multi['edges_per_sec'] / base['edges_per_sec']:.2f}x",
                str(multi["kernel_rounds"]),
                f"{multi['mean_occupancy']:.1f}/{r}",
            ])
    print(render_table(
        "Ablation: batched multi-sample kernel — one union decomposition "
        "vs r per-sample runs (identical partitions verified; speedup on "
        "aggregate edge-rounds/sec)",
        ["graph", "r", "multi full", "multi refine", "fwbw full",
         "speedup", "kernel rounds", "mean occupancy"],
        batched_rows,
    ))

    # ---- historical dataset table (live-edge samples of an analogue) ----
    graph = load_dataset(DATASET, "exp", seed=0)
    samples = [sample_live_edge_csr(graph, rng=i) for i in range(SAMPLES)]
    sampled_edges = sum(int(h.size) for _, h in samples)
    rows = []
    reference: list[Partition] = []
    for backend in KERNEL_BACKENDS:
        t0 = time.perf_counter()
        partitions = [
            Partition(scc_labels(indptr, heads, backend=backend))
            for indptr, heads in samples
        ]
        seconds = time.perf_counter() - t0
        if reference:
            assert partitions == reference, backend
        else:
            reference = partitions
        raw["dataset"]["backends"][backend] = {
            "wall_seconds": seconds,
            "edges_per_sec": sampled_edges / seconds,
        }
        rows.append([backend, f"{seconds:.3f} s"])

    with tempfile.TemporaryDirectory() as workdir:
        t0 = time.perf_counter()
        for i, (indptr, heads) in enumerate(samples):
            store = PairStore.create(os.path.join(workdir, f"{i}.pairs"),
                                     graph.n)
            tails = np.repeat(np.arange(graph.n), np.diff(indptr))
            store.append(tails, heads)
            labels = semi_external_scc_labels(store)
            assert Partition(labels) == reference[i]
        seconds = time.perf_counter() - t0
    raw["dataset"]["backends"]["semi-external"] = {
        "wall_seconds": seconds,
        "edges_per_sec": sampled_edges / seconds,
    }
    rows.append(["semi-external FB", f"{seconds:.3f} s"])

    print(render_table(
        f"Ablation: SCC backends on {SAMPLES} live-edge samples of {DATASET} "
        f"(n={graph.n:,}, m={graph.m:,}); identical partitions verified",
        ["backend", "total time"],
        rows,
    ))
    save_json(raw, results_path("ablation_scc.json"))
    save_json(raw, os.path.abspath(ROOT_JSON))
    return raw


def quick_canary() -> None:
    """CI correctness canary: fwbw and the batched multi kernel must
    produce the same canonical partitions as tarjan — on a small generated
    graph's live-edge samples, per batched row, and through the
    refinement-aware folds.  No timing, no files."""
    graph = generated_graph(2_000, 10_000, seed=1)
    rng = ensure_rng(0)
    for _ in range(6):
        indptr, heads = sample_live_edge_csr(graph, rng)
        a = Partition(scc_labels(indptr, heads, backend="fwbw"))
        b = Partition(scc_labels(indptr, heads, backend="tarjan"))
        assert a == b, "fwbw/tarjan partition mismatch"
    refined = robust_scc_partition(graph, 8, rng=0, scc_backend="fwbw",
                                   refine=True)
    full = robust_scc_partition(graph, 8, rng=0, scc_backend="tarjan")
    assert refined == full, "refinement-aware fold diverged"
    # Batched kernel: per-row label equality against per-sample fwbw on
    # the same masks, and bit-for-bit fold equality across refine modes.
    masks = np.stack([sample_live_edge_mask(graph, rng) for _ in range(6)])
    rows = multi_scc_labels(graph.indptr, graph.heads, masks)
    tails = np.repeat(np.arange(graph.n), np.diff(graph.indptr))
    for i in range(masks.shape[0]):
        t, h = tails[masks[i]], graph.heads[masks[i]]
        sub = np.zeros(graph.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(t, minlength=graph.n), out=sub[1:])
        ref = Partition(scc_labels(sub, np.ascontiguousarray(h),
                                   backend="fwbw"))
        assert Partition(rows[i]) == ref, f"multi row {i} diverged"
    for refine in (False, True):
        a = robust_scc_partition(graph, 8, rng=0, scc_backend="multi",
                                 refine=refine)
        b = robust_scc_partition(graph, 8, rng=0, scc_backend="fwbw",
                                 refine=refine)
        assert np.array_equal(a.labels, b.labels), "multi fold not bitwise"
    # The deep amortisation workload takes wide fold chunks (small m →
    # large multi_chunk_cap) and long trim-wave chains — cover that shape
    # in the equivalence canary too.
    deep = deep_generated_graph(500)
    a = robust_scc_partition(deep, 8, rng=0, scc_backend="multi")
    b = robust_scc_partition(deep, 8, rng=0, scc_backend="fwbw")
    assert np.array_equal(a.labels, b.labels), "multi fold not bitwise (deep)"
    print("quick canary ok: fwbw == tarjan == multi on samples and the "
          "r-robust folds (shallow and deep workloads)")


def bench_ablation_scc(benchmark):
    raw = run_once(benchmark, generate)
    backends = raw["dataset"]["backends"]
    # The streaming algorithm trades time for O(V) memory; it must still
    # land within a sane constant of the in-memory backends.
    assert (backends["semi-external"]["wall_seconds"]
            < 300 * backends["scipy"]["wall_seconds"])
    # The vectorised kernel must beat the interpreter loop decisively on
    # the largest generated graph, and retirement must be masking work.
    largest = raw["generated"][-1]
    assert (largest["kernel"]["fwbw"]["edges_per_sec"]
            >= 5 * largest["kernel"]["tarjan"]["edges_per_sec"])
    for r in R_VALUES:
        refine = largest["robust"][str(r)]["fwbw-refine"]
        assert sum(refine["masked_edges_per_round"]) > 0
    # The strict processed-edge reduction is a high-r claim: it needs the
    # running meet to have fragmented far enough that whole parts retire.
    # At low r, pivot-path divergence between the two modes can outweigh
    # the small masked counts.
    r_hi = str(max(R_VALUES))
    assert (sum(largest["robust"][r_hi]["fwbw-refine"]["processed_edges_per_round"])
            < sum(largest["robust"][r_hi]["fwbw-full"]["processed_edges_per_round"]))
    # The batched kernel's acceptance gate, measured where the claim
    # lives.  The deep tier is the amortisation regime — hundreds of
    # sequential frontier waves over tiny arrays, per-call fixed costs
    # dominant — and there the batched fold must at least double the
    # per-sample fold's aggregate throughput (edge-rounds/sec over the
    # whole fold); amortising those fixed costs across rounds is the
    # kernel's reason to exist.  The shallow tiers are cache-bound
    # (per-round element work is identical and the union domain is
    # wider), so batching buys little there by design; a sanity floor
    # keeps the backend from regressing into a pathology.
    deep = raw["generated"][0]
    assert deep["name"] == DEEP_TIER[0]
    deep_modes = deep["robust"][r_hi]
    assert (deep_modes["multi-full"]["edges_per_sec"]
            >= 2 * deep_modes["fwbw-full"]["edges_per_sec"]), deep["name"]
    for entry in raw["generated"][1:]:
        modes = entry["robust"][r_hi]
        assert (modes["multi-full"]["edges_per_sec"]
                >= 0.5 * modes["fwbw-full"]["edges_per_sec"]), entry["name"]


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        quick_canary()
    else:
        generate()
