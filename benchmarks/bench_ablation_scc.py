"""Ablation — SCC backend comparison (Tarjan vs Kosaraju vs scipy vs
semi-external FB).

The r-robust SCC stage runs one SCC computation per sample, so the backend
constant dominates Algorithm 1's run time.  This bench quantifies each
backend on live-edge samples of a real workload, plus the streaming
semi-external algorithm's overhead (its value is the O(V) memory contract,
not speed).
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.bench import render_table, save_json
from repro.datasets import load_dataset
from repro.diffusion import sample_live_edge_csr
from repro.partition import Partition
from repro.scc import scc_labels, semi_external_scc_labels
from repro.storage import PairStore

from conftest import results_path, run_once

DATASET = "twitter-2010"
SAMPLES = 4


def generate() -> dict:
    graph = load_dataset(DATASET, "exp", seed=0)
    samples = [sample_live_edge_csr(graph, rng=i) for i in range(SAMPLES)]
    raw: dict = {"dataset": DATASET, "samples": SAMPLES, "backends": {}}
    rows = []
    reference: list[Partition] = []
    for backend in ("tarjan", "kosaraju", "scipy"):
        t0 = time.perf_counter()
        partitions = [
            Partition(scc_labels(indptr, heads, backend=backend))
            for indptr, heads in samples
        ]
        seconds = time.perf_counter() - t0
        if reference:
            assert partitions == reference, backend
        else:
            reference = partitions
        raw["backends"][backend] = seconds
        rows.append([backend, f"{seconds:.3f} s"])

    with tempfile.TemporaryDirectory() as workdir:
        t0 = time.perf_counter()
        for i, (indptr, heads) in enumerate(samples):
            store = PairStore.create(os.path.join(workdir, f"{i}.pairs"),
                                     graph.n)
            tails = np.repeat(np.arange(graph.n), np.diff(indptr))
            store.append(tails, heads)
            labels = semi_external_scc_labels(store)
            assert Partition(labels) == reference[i]
        seconds = time.perf_counter() - t0
    raw["backends"]["semi-external"] = seconds
    rows.append(["semi-external FB", f"{seconds:.3f} s"])

    table = render_table(
        f"Ablation: SCC backends on {SAMPLES} live-edge samples of {DATASET} "
        f"(n={graph.n:,}, m={graph.m:,}); identical partitions verified",
        ["backend", "total time"],
        rows,
    )
    print(table)
    save_json(raw, results_path("ablation_scc.json"))
    return raw


def bench_ablation_scc(benchmark):
    raw = run_once(benchmark, generate)
    # The streaming algorithm trades time for O(V) memory; it must still
    # land within a sane constant of the in-memory backends.
    assert raw["backends"]["semi-external"] < 300 * raw["backends"]["scipy"]


if __name__ == "__main__":
    generate()
