"""The sketch oracle — point-query throughput vs pooled RIS, accuracy vs k.

The estimator registry's ``"sketch"`` family answers influence queries from
a precomputed bottom-k oracle (:class:`repro.sketch.InfluenceOracle`)
instead of scoring an RR pool per query.  This bench quantifies the trade:

* **throughput** — point queries (single-vertex seed sets) on one coarse
  model: the pooled-RIS estimator re-scores its coverage index per query
  (O(n_samples) each), the oracle answers the whole workload as one
  gather off its precomputed estimates (:meth:`InfluenceOracle.points`).
  Target: 100-1000x QPS.
* **accuracy vs k** — on a small graph where complete sketches are
  affordable, every ``k`` in the sweep is compared against the *exact*
  live-edge influence (an oracle whose sketches never truncate), pinning
  the Chebyshev envelope ``sketch_eps(k, delta)`` the registry advertises.

Acceptance (asserted whenever artefacts are written): sketch-oracle QPS
>= 100x pooled-RIS QPS on point queries — reported with an honest
``asserted``/``skip_reason`` pair when the gate cannot be measured (quick
mode, or sketch timing below timer resolution).  The equality and
accuracy assertions are ALWAYS on, in both modes: served answers equal
direct oracle answers bit-for-bit, and each sweep point keeps at least
``1 - delta`` of vertices inside its advertised envelope.  Results land
in ``benchmarks/results/sketch.json`` and the repo-root
``BENCH_sketch.json``.

CI runs ``python benchmarks/bench_sketch.py --quick`` as a correctness
canary: a small graph, every equality/accuracy assertion, no timing gates
and no files written.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.bench import render_table, save_json
from repro.core import coarsen_influence_graph
from repro.diffusion.reachability import reachable_mask
from repro.rng import ensure_rng
from repro.serve import InfluenceService, SamplePool, ServiceConfig
from repro.sketch import InfluenceOracle, round_masks, sketch_eps

from bench_ablation_scc import generated_graph
from conftest import results_path, run_once

R = 8
DELTA = 0.05
SKETCH_K = 64
N_SAMPLES = 4_000
POINT_QUERIES = 200
GRAPH_N, GRAPH_M = 10_000, 50_000
QUICK_N, QUICK_M = 2_000, 8_000
QUICK_QUERIES = 40
SWEEP_KS = (8, 16, 32, 64, 128)
SWEEP_N, SWEEP_M = 600, 3_000
QPS_GATE = 100.0

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_sketch.json")


def _point_vertices(n: int, count: int) -> list[int]:
    """Deterministic fine-graph vertices spread across [0, n)."""
    return [(31 * i + 7) % n for i in range(count)]


def _exact_point_values(coarse, entropy: int, targets: list[int]) -> np.ndarray:
    """``(1/r) sum_i w(R_i(v))`` per target, at the oracle's own rounds.

    This is the quantity the oracle sketches — reconstructed exactly from
    the shared keep-masks, so the accuracy assertion isolates *sketch*
    error from the coarsening's finite-r sampling error (which an
    independent RIS estimate of the true influence would fold in).
    """
    keep = round_masks(coarse, entropy, R)
    tails, heads = coarse.tails(), coarse.heads
    weights = coarse.weights.astype(np.float64)
    totals = np.zeros(len(targets))
    for i in range(R):
        t, h = tails[keep[i]], heads[keep[i]]
        order = np.argsort(t, kind="stable")
        indptr = np.zeros(coarse.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(t, minlength=coarse.n), out=indptr[1:])
        sorted_heads = h[order]
        for j, c in enumerate(targets):
            mask = reachable_mask(indptr, sorted_heads, np.asarray([c]))
            totals[j] += weights[mask].sum()
    return totals / R


def _throughput(graph, queries: int) -> dict:
    """Point-query QPS: pooled RIS vs the sketch oracle, one coarse model.

    Both paths answer the same quantity — the coarse influence of one
    coarse vertex — with all preprocessing (coarsening, pool drawing,
    sketch building) outside the timed region.
    """
    result = coarsen_influence_graph(graph, r=R, rng=0)
    coarse = result.coarse
    targets = [int(result.pi[v]) for v in _point_vertices(graph.n, queries)]

    pool = SamplePool(coarse, rng=0)
    pool.ensure(N_SAMPLES)
    estimator = pool.estimator(N_SAMPLES)
    t0 = time.perf_counter()
    ris_values = [estimator.estimate(coarse, np.asarray([c]))
                  for c in targets]
    ris_seconds = time.perf_counter() - t0

    # The oracle's batch face answers the whole point-query workload as
    # one gather; repeat it so the timed region is well above timer
    # resolution.
    oracle = InfluenceOracle(coarse, r=R, k=SKETCH_K, rng=0)
    batch = np.asarray(targets, dtype=np.int64)
    reps = 50
    t0 = time.perf_counter()
    for _ in range(reps):
        sketch_batch = oracle.points(batch)
    sketch_seconds = (time.perf_counter() - t0) / reps
    sketch_values = [float(v) for v in sketch_batch]
    # The batch face is exactly the per-call face, vectorized.
    assert sketch_values == [oracle.point(c) for c in targets]

    # Accuracy (always on): every sketch answer sits in the advertised
    # Chebyshev envelope of the exact realised-rounds influence, up to
    # the delta fraction the guarantee concedes.  (RIS is NOT the
    # reference here — it estimates the true influence, which differs
    # from the r-round empirical one by coarsening sampling error.)
    exact = _exact_point_values(coarse, oracle.entropy, targets)
    rel = np.abs(np.asarray(sketch_values) - exact) / exact
    eps = oracle.eps(DELTA)
    assert float(np.mean(rel > eps)) <= DELTA, float(np.mean(rel > eps))

    # Informational gap vs RIS over queries RIS resolved to a non-zero
    # estimate (a pool can miss a low-influence vertex entirely).
    ris_arr = np.asarray(ris_values)
    resolved = ris_arr > 0
    ris_gap = float(np.mean(
        np.abs(np.asarray(sketch_values)[resolved] - ris_arr[resolved])
        / ris_arr[resolved]))

    return {
        "queries": queries,
        "seconds": {"pooled_ris": ris_seconds, "sketch": sketch_seconds},
        "queries_per_second": {
            "pooled_ris": queries / ris_seconds if ris_seconds > 0 else None,
            "sketch": queries / sketch_seconds if sketch_seconds > 0 else None,
        },
        "oracle": {"k": SKETCH_K, "r": R, "nbytes": oracle.nbytes,
                   "eps": eps},
        "accuracy": {
            "mean_rel_error_vs_exact": float(rel.mean()),
            "max_rel_error_vs_exact": float(rel.max()),
            "frac_outside_envelope": float(np.mean(rel > eps)),
            # Informational: folds in the finite-r coarsening error, so
            # it is not gated.
            "mean_rel_gap_vs_pooled_ris": ris_gap,
        },
    }


def _serving_equality(graph) -> bool:
    """Served ``estimator='sketch'`` answers == direct oracle answers."""
    config = ServiceConfig(r=R, seed=0, estimator="sketch",
                           sketch_k=SKETCH_K, sketch_delta=DELTA)
    seed_sets = [[0], [1, 2], [3, 4, 5]]
    with InfluenceService(config) as svc:
        served = [svc.estimate(graph, seeds).value for seeds in seed_sets]
        model = svc.model_for(graph)
    oracle = InfluenceOracle(model.coarse, r=R, k=SKETCH_K,
                             rng=ensure_rng(config.seed))
    for seeds, value in zip(seed_sets, served):
        mapped = np.unique(model.pi[np.asarray(seeds)])
        assert value == oracle.estimate(model.coarse, mapped), seeds
    return True


def _accuracy_sweep() -> list[dict]:
    """Per-k error of every point estimate against the exact influence.

    The reference oracle's ``k`` exceeds the total item count ``r * n``,
    so its sketches are complete and its answers are the exact live-edge
    influence at the shared entropy (``rng=0`` derives the same entropy
    for every k, so all sweep points see the same realised rounds).
    """
    graph = generated_graph(SWEEP_N, SWEEP_M)
    coarse = coarsen_influence_graph(graph, r=R, rng=0).coarse
    exact = InfluenceOracle(coarse, r=R, k=R * coarse.n + 1,
                            rng=0).point_estimates
    rows = []
    for k in SWEEP_KS:
        oracle = InfluenceOracle(coarse, r=R, k=k, rng=0)
        rel = np.abs(oracle.point_estimates - exact) / exact
        eps = sketch_eps(k, DELTA)
        outside = float(np.mean(rel > eps))
        # Always on: the Chebyshev guarantee — at most a delta fraction of
        # vertices may fall outside the advertised envelope.
        assert outside <= DELTA, (k, outside)
        rows.append({
            "k": k,
            "advertised_eps": eps,
            "mean_rel_error": float(rel.mean()),
            "max_rel_error": float(rel.max()),
            "frac_outside_envelope": outside,
            "sketch_nbytes": oracle.nbytes,
        })
    # More budget, less error: the sweep endpoints must order correctly.
    assert rows[-1]["mean_rel_error"] <= rows[0]["mean_rel_error"], rows
    return rows


def generate(quick: bool = False) -> dict:
    n, m = (QUICK_N, QUICK_M) if quick else (GRAPH_N, GRAPH_M)
    queries = QUICK_QUERIES if quick else POINT_QUERIES
    graph = generated_graph(n, m)

    throughput = _throughput(graph, queries)
    serving_ok = _serving_equality(graph)
    sweep = _accuracy_sweep()

    qps = throughput["queries_per_second"]
    speedup = (qps["sketch"] / qps["pooled_ris"]
               if qps["sketch"] and qps["pooled_ris"] else None)
    if quick:
        asserted, skip_reason = False, "quick mode: timing gates skipped"
    elif speedup is None:
        asserted, skip_reason = (
            False, "sketch timing below timer resolution; gate unmeasurable")
    else:
        assert speedup >= QPS_GATE, f"sketch speedup {speedup:.1f}x < gate"
        asserted, skip_reason = True, None

    raw = {
        "schema": "bench_sketch/v1",
        "graph": {"n": graph.n, "m": graph.m},
        "r": R,
        "n_samples": N_SAMPLES,
        "throughput": throughput,
        "speedup_vs_pooled_ris": speedup,
        "gate": {"target": QPS_GATE, "measured": speedup,
                 "asserted": asserted, "skip_reason": skip_reason},
        "serving_matches_oracle": serving_ok,
        "accuracy_vs_k": sweep,
    }

    tiers = [["pooled_ris", f"{qps['pooled_ris']:.1f}" if qps["pooled_ris"]
              else "-", "1.0x"],
             ["sketch", f"{qps['sketch']:.1f}" if qps["sketch"] else "-",
              f"{speedup:.1f}x" if speedup else "-"]]
    print(render_table(
        f"Sketch oracle: {queries} point queries "
        f"(n={graph.n:,}, m={graph.m:,}, r={R}, k={SKETCH_K}, "
        f"{N_SAMPLES} RR sets)",
        ["backend", "queries/s", "speedup"], tiers))
    print(render_table(
        f"Accuracy vs k (n={SWEEP_N}, m={SWEEP_M}, delta={DELTA})",
        ["k", "advertised eps", "mean rel err", "max rel err", "outside"],
        [[str(row["k"]), f"{row['advertised_eps']:.3f}",
          f"{row['mean_rel_error']:.4f}", f"{row['max_rel_error']:.4f}",
          f"{row['frac_outside_envelope']:.3f}"] for row in sweep]))
    print(f"served == direct oracle (bit-for-bit): {serving_ok}; "
          f"QPS gate asserted: {asserted}"
          + (f" ({skip_reason})" if skip_reason else ""))

    if not quick:
        save_json(raw, results_path("sketch.json"))
        save_json(raw, ROOT_JSON)
    return raw


def bench_sketch(benchmark):
    raw = run_once(benchmark, lambda: generate(quick=True))
    assert raw["schema"] == "bench_sketch/v1"
    assert raw["serving_matches_oracle"]
    assert all(row["frac_outside_envelope"] <= DELTA
               for row in raw["accuracy_vs_k"])


if __name__ == "__main__":
    generate(quick="--quick" in sys.argv)
