"""Table 5 — the influence-maximization framework (Algorithm 4 with D-SSA).

Paper: time to select a seed set of size 100 and the solution's influence
(normalised by |V|), for plain D-SSA versus the framework (D-SSA on the
coarsened graph), with eps = 0.1 and delta = 0.01.  Headline shapes: the
framework's time ratio roughly tracks the edge-reduction ratio (D-SSA's
cost is reverse-simulation edge traversal); solution quality is virtually
identical; the largest EXP datasets OOM.

Scaled here to k = 20 on the analogue datasets; the OOM rows are reproduced
with an explicit RR-set pool budget (the analogue of the paper's 256 GB).
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms import DSSAMaximizer
from repro.estimators import make_estimator
from repro.bench import format_seconds, render_table, save_json
from repro.core import coarsen_influence_graph, maximize_on_coarse
from repro.datasets import load_dataset
from repro.errors import BudgetExceededError

from conftest import dataset_names, results_path, run_once

R = 16
K = 20
EPS, DELTA = 0.1, 0.01
# RR-pool budget in stored *vertices* (sum of RR-set sizes) — the scaled
# analogue of the paper's 256 GB ceiling.  High-influence (EXP, large)
# inputs blow this with few huge sets, exactly the paper's OOM mode.
POOL_BUDGET_ELEMENTS = 25_000_000
# Runtime guard: cap the sketch count (hitting it degrades eps slightly but
# keeps low-influence TRI runs bounded; flagged in the raw output).
MAX_SETS = 300_000
QUALITY_SIMULATIONS = 800


def _run(fn):
    t0 = time.perf_counter()
    try:
        out = fn()
    except BudgetExceededError:
        return None, None
    return out, time.perf_counter() - t0


def evaluate(name: str, setting: str) -> dict:
    graph = load_dataset(name, setting, seed=0)
    quality = make_estimator("mc", n_samples=QUALITY_SIMULATIONS, rng=5)

    plain_out, plain_seconds = _run(
        lambda: DSSAMaximizer(
            eps=EPS, delta=DELTA, rng=1, max_samples=MAX_SETS,
            memory_budget_elements=POOL_BUDGET_ELEMENTS,
        ).select(graph, K)
    )

    result = coarsen_influence_graph(graph, r=R, rng=0)
    fw_out, fw_seconds = _run(
        lambda: maximize_on_coarse(
            result, K,
            DSSAMaximizer(
                eps=EPS, delta=DELTA, rng=2, max_samples=MAX_SETS,
                memory_budget_elements=POOL_BUDGET_ELEMENTS,
            ),
            rng=3,
        )
    )

    row: dict = {
        "plain_seconds": plain_seconds,
        "framework_seconds": fw_seconds,
        "edge_ratio_pct": 100 * result.stats.edge_reduction_ratio,
    }
    if plain_out is not None:
        row["plain_influence_frac"] = (
            quality.estimate(graph, plain_out.seeds) / graph.n
        )
    if fw_out is not None:
        row["framework_influence_frac"] = (
            quality.estimate(graph, fw_out.seeds) / graph.n
        )
    if plain_seconds is not None and fw_seconds is not None:
        row["time_ratio_pct"] = 100 * fw_seconds / plain_seconds
    return row


def generate(settings=("exp", "tri"), title="Table 5",
             out_name="table5") -> dict:
    rows = []
    raw: dict = {}
    for name in dataset_names():
        raw[name] = {}
        cells = [name]
        for setting in settings:
            r = evaluate(name, setting)
            raw[name][setting] = r
            cells += [
                format_seconds(r["plain_seconds"])
                if r["plain_seconds"] is not None else "OOM",
                format_seconds(r["framework_seconds"])
                if r["framework_seconds"] is not None else "OOM",
                f"{r['time_ratio_pct']:.1f}%" if "time_ratio_pct" in r else "-",
                f"{r['plain_influence_frac']:.4f}"
                if "plain_influence_frac" in r else "-",
                f"{r['framework_influence_frac']:.4f}"
                if "framework_influence_frac" in r else "-",
            ]
        rows.append(cells)
    header = ["dataset"]
    for setting in settings:
        tag = setting.upper()
        header += [f"{tag} D-SSA", f"{tag} Alg4", "ratio",
                   "Inf/|V| D-SSA", "Inf/|V| Alg4"]
    table = render_table(
        f"{title}: seed selection (k={K}, eps={EPS}, delta={DELTA}, r={R})",
        header, rows,
    )
    print(table)
    save_json(raw, results_path(f"{out_name}.json"))
    with open(results_path(f"{out_name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return raw


def bench_table5_maximization(benchmark):
    raw = run_once(benchmark, generate)
    ratios, quality_gaps = [], []
    for name, per_setting in raw.items():
        for setting, row in per_setting.items():
            if "time_ratio_pct" in row:
                ratios.append(row["time_ratio_pct"])
            if (
                "plain_influence_frac" in row
                and "framework_influence_frac" in row
            ):
                quality_gaps.append(
                    row["framework_influence_frac"]
                    - row["plain_influence_frac"]
                )
    # Shape: the framework is faster on aggregate and loses essentially no
    # solution quality (paper: "nearly the same quality").
    assert float(np.median(ratios)) < 100.0
    assert all(gap > -0.02 for gap in quality_gaps)


if __name__ == "__main__":
    generate()
