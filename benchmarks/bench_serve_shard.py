"""Sharded serving — worker-process fan-out vs the threaded serve path.

``repro.serve.shard`` exists to make multi-core actually win at serving:
a fleet of worker processes attaches one shared coarse model and grows /
scores strided shards of the sample pool, so a batched ``/estimate``
escapes the GIL.  This bench measures the same batched workload on two
executors:

* **threaded** — the in-process serve path (thread-pool dispatcher, one
  shared pool, GIL-bound growth);
* **sharded**  — the same service with ``shard_workers`` set: growth and
  scoring fan out across the worker fleet over shared memory.

Correctness (always asserted, quick and full): threaded, sharded, and
sequential answers are bit-for-bit identical — the indexed-stream
discipline makes the pool a pure function of (model, entropy, index), so
who draws the samples can never change a value.

Timing acceptance: sharded-T <= threaded-T on the batched workload.
Recorded in the ``acceptance`` block but *asserted* only when the host
has more than one core — a 1-core box cannot see a parallel win, and
``asserted: false`` + ``skip_reason`` say so honestly instead of letting
trajectory tooling misread the raw boolean as a regression.  Results
land in ``benchmarks/results/serve_shard.json`` and the repo-root
``BENCH_shard.json``.

CI runs ``python benchmarks/bench_serve_shard.py --quick`` as a
correctness canary: a small graph, the equality assertions, the fleet
genuinely spawned, no timing gates and no files written.
"""

from __future__ import annotations

import os
import sys
import time

from repro.bench import format_seconds, render_table, save_json
from repro.serve import InfluenceService, ServiceConfig

from bench_ablation_scc import generated_graph
from conftest import results_path, run_once

R = 8
N_SAMPLES = 4_000
QUERIES = 24
SHARD_WORKERS = 4
GRAPH_N, GRAPH_M = 30_000, 150_000
QUICK_N, QUICK_M = 2_000, 8_000
QUICK_QUERIES = 6
QUICK_SHARD_WORKERS = 2

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_shard.json")


def _seed_sets(n: int, queries: int) -> list[list[int]]:
    """Deterministic single- and multi-vertex seed sets within [0, n)."""
    return [[(7 * i) % n, (13 * i + 1) % n][: 1 + i % 2]
            for i in range(queries)]


def _batched(graph, seed_sets, config) -> tuple[float, list[float]]:
    """One batched estimate_many on a fresh service; model build and
    (for sharded configs) fleet spawn stay outside the timed window."""
    with InfluenceService(config) as service:
        service.model_for(graph)
        if config.shard_workers is not None:
            # Touch the fleet so spawn/attach cost is not in the timing.
            service.estimate(graph, seed_sets[0], n_samples=1)
        t0 = time.perf_counter()
        results = service.estimate_many(graph, seed_sets)
        seconds = time.perf_counter() - t0
        stats = service.stats()
    if config.shard_workers is not None:
        assert not stats["shard"]["failed"], stats["shard"]
    return seconds, [q.value for q in results]


def _sequential(graph, seed_sets, config) -> list[float]:
    """One query at a time — the digest-equality reference."""
    with InfluenceService(config) as service:
        return [service.estimate(graph, seeds).value for seeds in seed_sets]


def generate(quick: bool = False) -> dict:
    n, m = (QUICK_N, QUICK_M) if quick else (GRAPH_N, GRAPH_M)
    queries = QUICK_QUERIES if quick else QUERIES
    workers = QUICK_SHARD_WORKERS if quick else SHARD_WORKERS
    cores = os.cpu_count() or 1
    graph = generated_graph(n, m)
    seed_sets = _seed_sets(graph.n, queries)
    base = dict(r=R, seed=0, n_samples=N_SAMPLES,
                min_samples=min(128, N_SAMPLES))
    threaded_config = ServiceConfig(**base)
    sharded_config = ServiceConfig(**base, shard_workers=workers)

    threaded_s, threaded_values = _batched(graph, seed_sets, threaded_config)
    sharded_s, sharded_values = _batched(graph, seed_sets, sharded_config)
    sequential_values = _sequential(graph, seed_sets, threaded_config)

    # The cross-executor digest: who draws the samples never changes a
    # value.  Asserted in every mode — this is the bench's real gate.
    assert threaded_values == sequential_values, "threaded != sequential"
    assert sharded_values == sequential_values, "sharded != sequential"

    raw = {
        "schema": "bench_serve_shard/v1",
        "graph": {"n": graph.n, "m": graph.m},
        "r": R,
        "n_samples": N_SAMPLES,
        "queries": queries,
        "cores": cores,
        "shard_workers": workers,
        "seconds": {"threaded": threaded_s, "sharded": sharded_s},
        "queries_per_second": {
            "threaded": queries / threaded_s,
            "sharded": queries / sharded_s,
        },
        "cross_executor_equal": True,
        # `asserted` records whether the timing gate was enforced here:
        # on a 1-core host the sharded path can only add IPC overhead, so
        # the comparison is recorded but deliberately not asserted.
        "acceptance": {
            "threaded_seconds": threaded_s,
            "sharded_seconds": sharded_s,
            f"sharded_{workers}_le_threaded": sharded_s <= threaded_s,
            "asserted": cores > 1,
            "skip_reason": (None if cores > 1 else
                            f"single-core host (os.cpu_count() == {cores}): "
                            "wall-clock shard speedup is not asserted"),
        },
    }

    rows = [
        ["threaded", format_seconds(threaded_s),
         f"{queries / threaded_s:.1f}", "1.00x"],
        ["sharded", format_seconds(sharded_s),
         f"{queries / sharded_s:.1f}",
         f"{threaded_s / sharded_s:.2f}x"],
    ]
    print(render_table(
        f"Serve shard: {queries} batched estimates "
        f"(n={graph.n:,}, m={graph.m:,}, r={R}, {N_SAMPLES} RR sets/query, "
        f"{workers} shard workers, host has {cores} core(s))",
        ["executor", "total", "queries/s", "vs threaded"],
        rows,
    ))
    acc = raw["acceptance"]
    print(f"cross-executor equal (bit-for-bit): "
          f"{raw['cross_executor_equal']}; "
          f"sharded <= threaded: {acc[f'sharded_{workers}_le_threaded']} "
          f"(asserted: {acc['asserted']})")
    if not acc["asserted"]:
        print(f"note: {acc['skip_reason']}")

    if not quick:
        if acc["asserted"]:
            assert acc[f"sharded_{workers}_le_threaded"], acc
        save_json(raw, results_path("serve_shard.json"))
        save_json(raw, ROOT_JSON)
    return raw


def bench_serve_shard(benchmark):
    raw = run_once(benchmark, generate)
    assert raw["schema"] == "bench_serve_shard/v1"
    assert raw["cross_executor_equal"]
    assert raw["acceptance"]["asserted"] == (raw["cores"] > 1)


if __name__ == "__main__":
    generate(quick="--quick" in sys.argv)
