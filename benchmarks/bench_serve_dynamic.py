"""Live-graph serving — sustained edge churn against a warm model.

PR 6's tentpole scenario: a served influence graph mutates in place
(Appendix C.2 / Algorithm 7) instead of being re-coarsened per edit.
This bench drives a :class:`repro.serve.DynamicModel` through a mixed
read/write workload and quantifies the three things that matter for a
live deployment:

* **update latency** — per-delta time through ``apply_deltas`` (the
  ``/apply_deltas`` endpoint's batch path) and through single-delta
  epochs (``/insert_edge`` / ``/delete_edge``), against the naive
  baseline of cold-rebuilding the coarsening after every delta;
* **sustained updates/sec** — the write throughput of the lineage while
  estimate queries keep landing between batches;
* **query latency under churn** — p50/p99 of estimates interleaved with
  the writes (each coarse-changing epoch invalidates the shared pool
  prefix, so queries pay the redraw — the honest serving cost).

Acceptance (asserted when writing artefacts): batched per-delta update
latency must beat cold-rebuild-per-delta by >= 50x, and the maintained
model must be bit-for-bit the cold :func:`repro.core.coarsen_addressable`
of the final mutated graph (checked in every mode).  Results land in
``benchmarks/results/serve_dynamic.json`` and the repo-root
``BENCH_dynamic.json``.

CI runs ``python benchmarks/bench_serve_dynamic.py --quick`` as a
correctness canary: a small graph, the equivalence assertions, no timing
gates and no files written.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.bench import render_table, save_json
from repro.core import coarsen_addressable
from repro.core.dynamic import Delta
from repro.rng import ensure_rng
from repro.serve import InfluenceService, ServiceConfig

from bench_ablation_scc import generated_graph
from conftest import results_path, run_once

R = 16
SEED = 7
N_SAMPLES = 128
GRAPH_N, GRAPH_M = 100_000, 200_000
BATCH, N_BATCHES, N_SINGLES, N_QUERIES = 8, 10, 20, 6
QUICK_N, QUICK_M = 2_000, 8_000
QUICK_BATCHES, QUICK_SINGLES, QUICK_QUERIES = 2, 5, 2

ROOT_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_dynamic.json")


class _Churn:
    """A deterministic mixed insert/delete stream over a live model."""

    def __init__(self, dyn, n: int, seed: int = 11) -> None:
        self._dyn = dyn
        self._n = n
        self._rng = ensure_rng(seed)
        self._inserted: list[tuple[int, int]] = []

    def batch(self, size: int) -> list[Delta]:
        deltas: list[Delta] = []
        pending: set[tuple[int, int]] = set()
        while len(deltas) < size:
            if self._inserted and self._rng.random() < 0.4:
                u, v = self._inserted.pop()
                if (u, v) in pending:  # already touched in this batch
                    self._inserted.append((u, v))
                    continue
                deltas.append(Delta("delete", u, v))
            else:
                u = int(self._rng.integers(self._n))
                v = int(self._rng.integers(self._n))
                if (u == v or (u, v) in pending
                        or self._dyn._coarsener.has_edge(u, v)):
                    continue
                p = float(self._rng.uniform(0.05, 0.35))
                deltas.append(Delta("insert", u, v, p))
                self._inserted.append((u, v))
            pending.add((u, v))
        return deltas


def generate(quick: bool = False) -> dict:
    n, m = (QUICK_N, QUICK_M) if quick else (GRAPH_N, GRAPH_M)
    n_batches = QUICK_BATCHES if quick else N_BATCHES
    n_singles = QUICK_SINGLES if quick else N_SINGLES
    n_queries = QUICK_QUERIES if quick else N_QUERIES
    graph = generated_graph(n, m)

    # Baseline: what every delta would cost if the service re-coarsened
    # from scratch (the pre-PR-6 pipeline for a mutated graph).  Sampled
    # three times, interleaved with the dynamic tiers below, because this
    # box's effective CPU speed is bursty — medians on both sides keep
    # the speedup ratio honest when a burst lands mid-run.
    def cold_rebuild_seconds() -> float:
        t0 = time.perf_counter()
        coarsen_addressable(graph, r=R, seed=SEED)
        return time.perf_counter() - t0

    cold_samples = [cold_rebuild_seconds()]

    config = ServiceConfig(r=R, seed=SEED, sampler="addressable",
                           n_samples=N_SAMPLES,
                           min_samples=min(64, N_SAMPLES))
    with InfluenceService(config) as service:
        t0 = time.perf_counter()
        dyn = service.attach_dynamic(graph)
        attach_s = time.perf_counter() - t0
        churn = _Churn(dyn, graph.n)

        # Tier 1 — single-delta epochs (the /insert_edge | /delete_edge
        # path: one delta, one epoch, one publish).
        single_lat = []
        for _ in range(n_singles):
            (delta,) = churn.batch(1)
            t0 = time.perf_counter()
            out = dyn.apply_deltas([delta])
            single_lat.append(time.perf_counter() - t0)
            assert out["applied"] == 1 and not out["rebuilt"], out
        cold_samples.append(cold_rebuild_seconds())

        # Tier 2 — mixed read/write: delta batches (the /apply_deltas
        # path) racing estimate queries on the epochs they publish.
        batch_lat, query_lat = [], []
        deltas_applied = 0
        for i in range(n_batches):
            deltas = churn.batch(BATCH)
            t0 = time.perf_counter()
            dyn.apply_deltas(deltas)
            batch_lat.append(time.perf_counter() - t0)
            deltas_applied += len(deltas)
            if i * n_queries // n_batches != (i + 1) * n_queries // n_batches:
                seeds = [int(s) % graph.n for s in (7 * i + 1, 13 * i + 2)]
                t0 = time.perf_counter()
                epoch, _ = dyn.estimate(seeds)
                query_lat.append(time.perf_counter() - t0)
                assert epoch == dyn.epoch
        cold_samples.append(cold_rebuild_seconds())

        # The acceptance invariant of the whole lineage: the maintained
        # model IS the cold coarsening of the mutated graph, bit for bit.
        cold_end = coarsen_addressable(dyn.graph, r=R, seed=SEED)
        equivalent = (
            dyn.model.coarse.digest() == cold_end.coarse.digest()
            and np.array_equal(dyn.model.pi, cold_end.pi)
        )
        assert equivalent, "dynamic model diverged from cold rebuild"
        stats = dyn._coarsener.stats

    single = np.array(single_lat)
    batched = np.array(batch_lat)
    cold_s = float(np.median(cold_samples))
    # Medians, for the same bursty-box reason as the cold baseline: one
    # descheduled epoch should not decide the headline ratio.
    single_md = float(np.median(single))
    per_delta = float(np.median(batched)) / BATCH
    pruned_pct = 100 * stats.scc_skipped / max(
        stats.scc_skipped + stats.scc_recomputations, 1)
    raw = {
        "schema": "bench_serve_dynamic/v1",
        "graph": {"n": graph.n, "m": graph.m},
        "r": R,
        "updates": {"singles": n_singles,
                    "batches": n_batches, "batch_size": BATCH},
        "cold_rebuild_per_delta_ms": cold_s * 1e3,
        "cold_rebuild_samples_ms": [s * 1e3 for s in cold_samples],
        "attach_seconds": float(attach_s),
        "single_delta_ms": {"median": single_md * 1e3,
                            "mean": float(single.mean() * 1e3),
                            "p99": float(np.percentile(single, 99) * 1e3)},
        "batched_per_delta_ms": per_delta * 1e3,
        "updates_per_sec_sustained": float(deltas_applied / batched.sum()),
        "speedup_vs_cold": {"single": cold_s / single_md,
                            "batched": cold_s / per_delta},
        "query_under_churn_ms": {
            "p50": float(np.percentile(query_lat, 50) * 1e3),
            "p99": float(np.percentile(query_lat, 99) * 1e3),
        },
        "scc_pruned_pct": pruned_pct,
        "full_rebuilds": stats.full_rebuilds,
        "fast_updates": stats.fast_updates,
        "dynamic_equals_cold": equivalent,
    }

    print(render_table(
        f"Live-graph serving (n={graph.n:,}, m={graph.m:,}, r={R}): "
        f"{n_singles} single + {deltas_applied} batched deltas",
        ["metric", "value"],
        [
            ["cold rebuild / delta", f"{raw['cold_rebuild_per_delta_ms']:.1f} ms"],
            ["single-delta epoch (median)",
             f"{raw['single_delta_ms']['median']:.1f} ms "
             f"({raw['speedup_vs_cold']['single']:.0f}x)"],
            ["batched per-delta (B={})".format(BATCH),
             f"{raw['batched_per_delta_ms']:.1f} ms "
             f"({raw['speedup_vs_cold']['batched']:.0f}x)"],
            ["sustained updates/sec",
             f"{raw['updates_per_sec_sustained']:.0f}"],
            ["query p99 under churn",
             f"{raw['query_under_churn_ms']['p99']:.0f} ms"],
            ["SCC recomputations pruned", f"{pruned_pct:.1f}%"],
            ["full rebuilds", str(stats.full_rebuilds)],
            ["dynamic == cold rebuild", str(equivalent)],
        ],
    ))

    if not quick:
        # The acceptance gate: applying deltas to the warm model must
        # beat cold-rebuild-per-delta by >= 50x on the batch path (the
        # single-delta path is informational — it pays the full per-epoch
        # publish overhead for one edge).
        assert raw["speedup_vs_cold"]["batched"] >= 50.0, raw["speedup_vs_cold"]
        assert raw["speedup_vs_cold"]["single"] >= 5.0, raw["speedup_vs_cold"]
        save_json(raw, results_path("serve_dynamic.json"))
        save_json(raw, ROOT_JSON)
    return raw


def bench_serve_dynamic(benchmark):
    raw = run_once(benchmark, generate)
    assert raw["schema"] == "bench_serve_dynamic/v1"
    assert raw["dynamic_equals_cold"]
    # Even in quick mode a maintained update beats re-coarsening: it only
    # touches the samples in which the edge materialises.
    assert raw["batched_per_delta_ms"] < raw["cold_rebuild_per_delta_ms"]


if __name__ == "__main__":
    generate(quick="--quick" in sys.argv)
