"""Table 11 — Table 5 (maximization framework) under the UC and WC settings.

Paper shapes: UC mirrors EXP (framework speed-up tracks edge reduction;
large UC datasets OOM); under WC both run quickly with near-100% time
ratios and identical solution quality.
"""

from __future__ import annotations

import numpy as np

from bench_table5_maximization import generate as _generate

from conftest import run_once


def generate() -> dict:
    return _generate(settings=("uc", "wc"), title="Table 11",
                     out_name="table11")


def bench_table11_maximization_ucwc(benchmark):
    raw = run_once(benchmark, generate)
    quality_gaps = []
    for name, per_setting in raw.items():
        for setting, row in per_setting.items():
            if (
                "plain_influence_frac" in row
                and "framework_influence_frac" in row
            ):
                quality_gaps.append(
                    row["framework_influence_frac"]
                    - row["plain_influence_frac"]
                )
    # Shape: quality parity holds under UC and WC just as under EXP/TRI.
    assert quality_gaps, "no dataset produced both solutions"
    assert all(gap > -0.02 for gap in quality_gaps)


if __name__ == "__main__":
    generate()
