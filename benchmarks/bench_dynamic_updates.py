"""Ablation — dynamic updates (Algorithm 7) vs recomputation from scratch.

Appendix C.2: an edge update only materialises in a p-fraction of the live
edge samples, so almost all SCC recomputations are pruned, and when no
sample's SCC partition changes the coarse graph is patched in O(1).  This
bench measures the realised pruning rate and the per-update speed-up over
rerunning Algorithm 1.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import render_table, save_json
from repro.core import DynamicCoarsener, coarsen_influence_graph
from repro.datasets import load_dataset
from repro.rng import ensure_rng

from conftest import results_path, run_once

DATASET = "soc-slashdot"
R = 16
N_UPDATES = 60


def generate() -> dict:
    graph = load_dataset(DATASET, "exp", seed=0)
    dyn = DynamicCoarsener(graph, r=R, rng=0)
    rng = ensure_rng(42)

    # Mixed update stream: random insertions with realistic (EXP-like)
    # probabilities, plus deletions of random existing edges.
    t0 = time.perf_counter()
    inserted: list[tuple[int, int]] = []
    applied = 0
    while applied < N_UPDATES:
        if inserted and rng.random() < 0.4:
            u, v = inserted.pop()
            dyn.delete_edge(u, v)
        else:
            u = int(rng.integers(graph.n))
            v = int(rng.integers(graph.n))
            if u == v or dyn.has_edge(u, v):
                continue
            p = float(min(1.0, rng.exponential(0.1) + 1e-6))
            dyn.insert_edge(u, v, p)
            inserted.append((u, v))
        applied += 1
    dynamic_seconds = time.perf_counter() - t0

    # Reference: rerun static coarsening once per update.
    t0 = time.perf_counter()
    coarsen_influence_graph(dyn.current_graph(), r=R, rng=0)
    scratch_once = time.perf_counter() - t0

    s = dyn.stats
    pruned_pct = 100 * s.scc_skipped / max(s.scc_skipped + s.scc_recomputations, 1)
    per_update = dynamic_seconds / N_UPDATES
    raw = {
        "dataset": DATASET,
        "updates": N_UPDATES,
        "dynamic_seconds_per_update": per_update,
        "scratch_seconds_per_update": scratch_once,
        "speedup": scratch_once / per_update,
        "pruned_scc_pct": pruned_pct,
        "full_rebuilds": s.full_rebuilds,
        "fast_updates": s.fast_updates,
    }
    print(render_table(
        f"Dynamic updates vs recomputation on {DATASET} (r={R}, "
        f"{N_UPDATES} updates)",
        ["metric", "value"],
        [
            ["dynamic time / update", f"{per_update * 1e3:.1f} ms"],
            ["from-scratch time / update", f"{scratch_once * 1e3:.1f} ms"],
            ["speed-up", f"{raw['speedup']:.1f}x"],
            ["SCC recomputations pruned", f"{pruned_pct:.1f}%"],
            ["full rebuilds", str(s.full_rebuilds)],
            ["O(1) fast updates", str(s.fast_updates)],
        ],
    ))
    save_json(raw, results_path("dynamic_updates.json"))
    return raw


def bench_dynamic_updates(benchmark):
    raw = run_once(benchmark, generate)
    # Shape: with EXP-scale probabilities, ~90% of SCC recomputations are
    # pruned by the materialisation coin flip (Appendix C.2's argument).
    assert raw["pruned_scc_pct"] > 70.0
    # The typical update beats recomputing the coarsening from scratch.
    assert raw["speedup"] > 1.0


if __name__ == "__main__":
    generate()
