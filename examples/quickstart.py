"""Quickstart: coarsen an influence graph and see what the theory promises.

This walks the paper's own worked example (Figures 1-2, Example 4.2):

1. build the 9-vertex influence graph of Figure 1;
2. coarsen it by the Example 4.2 partition and check q(c1, c2) = 0.44;
3. run the full r-robust SCC pipeline (Algorithm 1) on it;
4. verify the sandwich bound of Theorem 4.6 with exact influence values.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GraphBuilder, Partition, coarsen, coarsen_influence_graph
from repro.analysis import exact_influence, exact_reliability, reliability_product

# ----------------------------------------------------------------------
# 1. The influence graph of Figure 1 (vertices 0..8 = paper's v1..v9).
# ----------------------------------------------------------------------
builder = GraphBuilder(n=9)
for u, v, p in [
    (0, 1, 0.6), (1, 0, 0.7), (1, 2, 0.8), (2, 0, 0.9),  # the C1 triangle
    (1, 3, 0.3), (2, 3, 0.2),                             # C1 -> v4 (q = 0.44)
    (3, 4, 0.4), (4, 5, 0.5), (5, 4, 0.6),                # v4 -> C3 = {v5, v6}
    (5, 6, 0.3), (6, 7, 0.2), (7, 8, 0.4), (8, 7, 0.5),   # ... -> C5 = {v8, v9}
]:
    builder.add_edge(u, v, p)
graph = builder.build()
print(f"input graph: {graph}")

# ----------------------------------------------------------------------
# 2. Coarsen by the partition of Example 4.2 and reproduce Figure 2.
# ----------------------------------------------------------------------
partition = Partition.from_blocks(
    [[0, 1, 2], [3], [4, 5], [6], [7, 8]], 9
)
coarse, pi = coarsen(graph, partition, validate=True)
print(f"coarsened:   {coarse} with weights {coarse.weights.tolist()}")
q = {(int(u), int(v)): float(p) for u, v, p in zip(*coarse.edge_arrays())}
print(f"q(c1, c2) = {q[(0, 1)]:.2f}   (paper: 1 - (1-0.3)(1-0.2) = 0.44)")

rel_c1 = exact_reliability(graph.induced_subgraph(np.array([0, 1, 2])))
print(f"Rel(G[C1]) = {rel_c1:.5f}  (strongly connected reliability, Eq. 14)")

# ----------------------------------------------------------------------
# 3. The full pipeline: r-robust SCC extraction + contraction (Alg. 1).
# ----------------------------------------------------------------------
result = coarsen_influence_graph(graph, r=4, rng=0)
print(
    f"\nAlgorithm 1 (r=4): {result.coarse}, "
    f"|W|/|V| = {result.stats.vertex_reduction_ratio:.0%}, "
    f"|F|/|E| = {result.stats.edge_reduction_ratio:.0%}"
)

# ----------------------------------------------------------------------
# 4. Theorem 4.6 on real numbers: Inf_G <= Inf_H <= Inf_G / prod Rel.
# ----------------------------------------------------------------------
rel_product = reliability_product(graph, partition, rng=0)
print(f"\nTheorem 4.6 check (prod Rel(G[Cj]) = {rel_product:.4f}):")
print(f"{'seed':>4} {'Inf_G':>8} {'Inf_H':>8} {'upper bound':>12}")
for seed in (0, 3, 6):
    inf_g = exact_influence(graph, np.array([seed]))
    inf_h = exact_influence(coarse, np.unique(pi[np.array([seed])]))
    bound = inf_g / rel_product
    assert inf_g - 1e-9 <= inf_h <= bound + 1e-9
    print(f"{seed:>4} {inf_g:>8.4f} {inf_h:>8.4f} {bound:>12.4f}")
print("\nall sandwich bounds hold — coarsening preserved the diffusion")
