"""Out-of-core pipeline: coarsen a graph that never fits in memory.

The paper's scalability headline (Algorithm 2): when the edge list cannot
be held in RAM, stream it from disk, run a semi-external SCC per live-edge
sample with O(V) resident state, and write the coarsened graph back to
disk — at ~10% of the linear-space implementation's memory.

This example builds an on-disk triplet store, coarsens it without ever
materialising the edge list, inspects the I/O counters, and finally loads
the (much smaller) coarse graph for analysis.

Run:  python examples/out_of_core_pipeline.py
"""

import os
import tempfile

from repro import TripletStore, coarsen_influence_graph, load_dataset
from repro.bench import measure

graph = load_dataset("com-friendster", setting="exp", seed=0)
print(f"network: {graph} (synthetic analogue of com-Friendster)\n")

with tempfile.TemporaryDirectory() as workdir:
    # In production the store would already exist; here we spill the
    # generated graph once to set the stage.
    source = TripletStore.from_graph(graph, os.path.join(workdir, "input.trip"))
    print(f"on-disk input: {source.m:,} triplets "
          f"({os.path.getsize(source.path) / 1e6:.1f} MB)")

    run = measure(
        lambda: coarsen_influence_graph(source, space="sublinear", out_path=os.path.join(workdir, "coarse.trip"), r=16, rng=0,
            work_dir=workdir,
        )
    )
    result = run.result
    stats = result.stats
    print(
        f"\ncoarsened in {run.seconds:.1f} s with peak resident memory "
        f"{run.peak_mb:.1f} MB (edge list alone would be "
        f"{graph.m * 24 / 1e6:.0f} MB)"
    )
    print(
        f"output: {stats.output_vertices:,} vertices / "
        f"{stats.output_edges:,} edges "
        f"({stats.edge_reduction_ratio:.1%} of input edges)"
    )
    print(
        f"F' (aggregated bundles held in memory): "
        f"{stats.extras['f_prime_edges']:,} of {stats.output_edges:,} "
        f"coarse edges — everything else streamed straight through"
    )
    print(
        f"I/O: read {stats.extras['bytes_read'] / 1e6:.0f} MB, "
        f"wrote {stats.extras['bytes_written'] / 1e6:.0f} MB, "
        f"{stats.extras['scc_stream_passes']} SCC stream passes"
    )

    # The O(W) metadata is in memory; materialise the coarse graph only
    # when (and if) downstream analysis wants it.
    coarse = result.load().coarse
    print(f"\nloaded coarse graph for analysis: {coarse}")
