"""Linear Threshold seed selection with RR sketches (library extension).

The paper's coarsening is IC-only, but the library's sketch machinery also
speaks the Linear Threshold model: ``RRSampler(model="lt")`` draws LT RR
sets (reverse in-edge walks), so D-SSA / IMM / TIM+ / RIS run under LT
unchanged.  This example selects seeds on a weighted-cascade network — WC
weights (1/indegree) satisfy the LT constraint by construction — and
validates the pick against direct LT simulation.

Run:  python examples/linear_threshold_maximization.py
"""

import time

import numpy as np

from repro import DSSAMaximizer, load_dataset
from repro.diffusion import estimate_influence_lt

K = 5
graph = load_dataset("soc-slashdot", setting="wc", seed=0)
print(f"network: {graph} with WC weights (LT-valid: per-vertex in-mass = 1)\n")

t0 = time.perf_counter()
result = DSSAMaximizer(eps=0.15, delta=0.05, rng=1, model="lt").select(graph, K)
seconds = time.perf_counter() - t0
print(f"D-SSA under LT picked {result.seeds.tolist()} in {seconds:.1f} s "
      f"({result.extras['rr_sets']} LT RR sets)")
print(f"sketch estimate of the LT spread: {result.estimated_influence:.1f}")

spread = estimate_influence_lt(graph, result.seeds, 2_000, rng=9)
print(f"direct LT simulation of the same seeds: {spread:.1f}")

# sanity baseline: K random seeds
rng = np.random.default_rng(3)
random_seeds = rng.choice(graph.n, size=K, replace=False)
random_spread = estimate_influence_lt(graph, random_seeds, 2_000, rng=10)
print(f"\nrandom {K}-seed baseline: {random_spread:.1f} "
      f"({spread / random_spread:.1f}x worse than the selected set)")
