"""Viral marketing: pick seed users for a product campaign, fast.

The paper's motivating application (Section 1): a marketer wants the k
users whose word-of-mouth cascade reaches the largest audience.  Running a
state-of-the-art sketch algorithm (D-SSA) directly on the full network is
expensive; the influence-maximization framework (Algorithm 4) runs it on
the coarsened network and translates the seeds back, with provable quality
(Theorem 6.2).

This example compares three ways to pick 10 seeds on a social-network
analogue and cross-checks their quality with Monte-Carlo simulation:

* degree heuristic (cheap, no guarantee),
* plain D-SSA on the full graph,
* D-SSA via the coarsening framework.

Run:  python examples/viral_marketing.py
"""

import time

import numpy as np

from repro import (
    DegreeHeuristic,
    DSSAMaximizer,
    coarsen_influence_graph,
    load_dataset,
    make_estimator,
    maximize_on_coarse,
)

K = 10
graph = load_dataset("soc-slashdot", setting="exp", seed=0)
print(f"network: {graph} (synthetic analogue of soc-Slashdot0922)\n")

judge = make_estimator("mc", n_samples=2_000, rng=99)


def report(label: str, seeds: np.ndarray, seconds: float) -> float:
    spread = judge.estimate(graph, seeds)
    print(f"{label:28} {seconds:7.2f} s   expected audience: "
          f"{spread:8.1f} users ({spread / graph.n:.1%} of the network)")
    return spread


# -- baseline: just take the best-connected users -----------------------
t0 = time.perf_counter()
degree_seeds = DegreeHeuristic().select(graph, K).seeds
report("degree heuristic", degree_seeds, time.perf_counter() - t0)

# -- state of the art on the full network --------------------------------
t0 = time.perf_counter()
plain = DSSAMaximizer(eps=0.1, delta=0.01, rng=1).select(graph, K)
plain_seconds = time.perf_counter() - t0
plain_spread = report("D-SSA (full graph)", plain.seeds, plain_seconds)

# -- the paper's framework: coarsen once, then run D-SSA on the sketch ---
t0 = time.perf_counter()
result = coarsen_influence_graph(graph, r=16, rng=0)
coarsen_seconds = time.perf_counter() - t0
print(
    f"\ncoarsening (r=16): {coarsen_seconds:.2f} s, kept "
    f"{result.stats.edge_reduction_ratio:.0%} of edges, "
    f"{result.stats.vertex_reduction_ratio:.0%} of vertices"
)

t0 = time.perf_counter()
framework = maximize_on_coarse(
    result, K, DSSAMaximizer(eps=0.1, delta=0.01, rng=2), rng=3
)
framework_seconds = time.perf_counter() - t0
framework_spread = report(
    "D-SSA via Algorithm 4", framework.seeds, framework_seconds
)

print(
    f"\nframework solve time: {framework_seconds:.2f} s vs "
    f"{plain_seconds:.2f} s plain "
    f"({framework_seconds / plain_seconds:.0%}); quality gap "
    f"{(framework_spread - plain_spread) / plain_spread:+.1%}"
)
print("the coarsened graph is reusable: every further campaign (other k,")
print("other algorithms, estimation queries) amortises the one-off cost")
