"""Influence estimation at scale: audit many users' reach cheaply.

The influence-estimation problem (Section 3.2): given seed sets, compute
their expected spread.  Analysts run this for *many* queries (per-user
audits, A/B comparisons of seed sets), so per-query cost dominates.  The
estimation framework (Algorithm 3) answers every query on the coarsened
graph; Theorem 6.1 bounds the relative error.

This example estimates the influence of 20 users on a web-graph analogue
with plain Monte-Carlo and with the framework, comparing total time and
per-user agreement — and then shows a multi-seed query (a whole campaign's
seed set) for free on the same coarse graph.

Run:  python examples/influence_estimation_at_scale.py
"""

import time

import numpy as np

from repro import (
    coarsen_influence_graph,
    estimate_on_coarse,
    load_dataset,
    make_estimator,
)
from repro.analysis import mean_absolute_relative_error, spearman_rank_correlation

SIMULATIONS = 3_000
graph = load_dataset("uk-2007-05", setting="exp", seed=0)
print(f"network: {graph} (synthetic analogue of uk-2007-05)\n")

result = coarsen_influence_graph(graph, r=16, rng=0)
print(
    f"coarsened once in {result.stats.total_seconds:.2f} s -> "
    f"{result.coarse} ({result.stats.edge_reduction_ratio:.0%} of edges)\n"
)

rng = np.random.default_rng(5)
users = rng.choice(graph.n, size=20, replace=False)

plain = make_estimator("mc", n_samples=SIMULATIONS, rng=1)
t0 = time.perf_counter()
ground_truth = np.array([plain.estimate(graph, np.array([u])) for u in users])
plain_seconds = time.perf_counter() - t0

framework = make_estimator("mc", n_samples=SIMULATIONS, rng=2)
t0 = time.perf_counter()
estimates = np.array(
    [estimate_on_coarse(result, np.array([u]), framework) for u in users]
)
framework_seconds = time.perf_counter() - t0

print(f"{'user':>6} {'plain MC':>10} {'framework':>10}")
for u, gt, est in list(zip(users, ground_truth, estimates))[:8]:
    print(f"{u:>6} {gt:>10.1f} {est:>10.1f}")
print("   ...")

mare = mean_absolute_relative_error(ground_truth, estimates)
rcc = spearman_rank_correlation(ground_truth, estimates)
print(
    f"\n20 queries: plain {plain_seconds:.2f} s, framework "
    f"{framework_seconds:.2f} s ({framework_seconds / plain_seconds:.0%}); "
    f"MARE {mare:.4f}, rank correlation {rcc:.4f}"
)

# A whole-campaign query: influence of a 50-page seed set, framework only.
campaign = rng.choice(graph.n, size=50, replace=False)
t0 = time.perf_counter()
spread = estimate_on_coarse(result, campaign, framework)
print(
    f"\n50-seed campaign spread ~ {spread:,.0f} pages "
    f"(one query, {time.perf_counter() - t0:.2f} s on the coarse graph)"
)
