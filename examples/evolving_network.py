"""Evolving networks: keep the coarse graph fresh under edge churn.

Social networks change constantly.  Appendix C.2's dynamic algorithm
maintains the coarsened graph under edge insertions and deletions instead
of re-coarsening from scratch: an update only re-examines the live-edge
samples in which the edge materialises (a p-fraction in expectation), so
nearly all SCC recomputations are pruned.

This example streams follower churn into a social-network analogue,
periodically answers influence queries on the *maintained* coarse graph,
and verifies against a from-scratch recomputation.

Run:  python examples/evolving_network.py
"""

import time

import numpy as np

from repro import DynamicCoarsener, load_dataset, make_estimator
from repro.core import estimate_on_coarse

graph = load_dataset("soc-slashdot", setting="exp", seed=0)
print(f"initial network: {graph}\n")

t0 = time.perf_counter()
dyn = DynamicCoarsener(graph, r=16, rng=0)
print(f"initial coarsening: {time.perf_counter() - t0:.2f} s")

rng = np.random.default_rng(123)
estimator = make_estimator("mc", n_samples=1_500, rng=9)
watched_user = 42

inserted: list[tuple[int, int]] = []
t0 = time.perf_counter()
for step in range(1, 101):
    # Churn: 60% new follows (EXP-like probability), 40% unfollows.
    if inserted and rng.random() < 0.4:
        u, v = inserted.pop(rng.integers(len(inserted)))
        dyn.delete_edge(u, v)
    else:
        while True:
            u, v = int(rng.integers(graph.n)), int(rng.integers(graph.n))
            if u != v and not dyn.has_edge(u, v):
                break
        dyn.insert_edge(u, v, float(min(1.0, rng.exponential(0.1) + 1e-6)))
        inserted.append((u, v))

    if step % 25 == 0:
        snap = dyn.snapshot()
        spread = estimate_on_coarse(snap, np.array([watched_user]), estimator)
        print(
            f"after {step:3d} updates: coarse graph {snap.coarse.n} vertices/"
            f"{snap.coarse.m} edges, user {watched_user} reaches ~{spread:,.0f}"
        )
churn_seconds = time.perf_counter() - t0

s = dyn.stats
pruned = 100 * s.scc_skipped / (s.scc_skipped + s.scc_recomputations)
print(
    f"\n100 updates in {churn_seconds:.2f} s "
    f"({churn_seconds * 10:.1f} ms/update); "
    f"{pruned:.0f}% of SCC recomputations pruned, "
    f"{s.fast_updates} O(1) fast updates, {s.full_rebuilds} full rebuilds"
)

# Safety check: the maintained state equals a recomputation from scratch.
reference = dyn.reference_coarsening()
snapshot = dyn.snapshot()
assert snapshot.partition == reference.partition
assert snapshot.coarse == reference.coarse
print("maintained coarse graph == from-scratch recomputation  [verified]")
